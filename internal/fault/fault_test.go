package fault_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"parafile/internal/bench"
	"parafile/internal/clusterfile"
	"parafile/internal/fault"
	"parafile/internal/obs"
	"parafile/internal/part"
	"parafile/internal/rpc"
)

// fault_test.go exercises the fault-injection harness end to end: the
// schedule grammar, transparency of an idle injector, the PartialError
// outcomes the clusterfile fan-out reports under one-node / all-node /
// mid-write failures, hang-until-cancel against the per-op deadline,
// and transport equivalence when connection faults are absorbed by the
// rpc client's idempotent retries.

// --- helpers -------------------------------------------------------

// buildCluster assembles a 4x4 cluster with a column-block physical
// file and the row-block view of compute node 0, so one view write
// fans out to all four I/O nodes.
func buildCluster(cfg clusterfile.Config, name string) (*clusterfile.Cluster, *clusterfile.File, *clusterfile.View, int64, error) {
	c, err := clusterfile.New(cfg)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	const n = 32
	cols, err := part.ColBlocks(n, n, 4)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	f, err := c.CreateFile(name, part.MustFile(0, cols), nil)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	rows, err := part.RowBlocks(n, n, 4)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	v, err := f.SetView(0, part.MustFile(0, rows), 0)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	return c, f, v, n * n / 4, nil
}

// faultCluster wires a plan-wrapped local transport into buildCluster.
func faultCluster(t *testing.T, plan fault.Plan, tweak func(*clusterfile.Config)) (*clusterfile.Cluster, *clusterfile.File, *clusterfile.View, int64, *fault.Injector) {
	t.Helper()
	inj := fault.NewInjector(plan, nil)
	cfg := clusterfile.DefaultConfig()
	cfg.Transport = inj.WrapTransport(clusterfile.NewLocalTransport(nil))
	if tweak != nil {
		tweak(&cfg)
	}
	c, f, v, per, err := buildCluster(cfg, "faulted")
	if err != nil {
		t.Fatal(err)
	}
	return c, f, v, per, inj
}

// pattern fills a deterministic payload.
func pattern(n int64) []byte {
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = byte(i*7 + 13)
	}
	return buf
}

func eqInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// asPartial asserts err carries a *clusterfile.PartialError.
func asPartial(t *testing.T, err error) *clusterfile.PartialError {
	t.Helper()
	var pe *clusterfile.PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("want PartialError, got %T: %v", err, err)
	}
	return pe
}

// checkNoGoroutineLeak waits for the goroutine count to settle back to
// the baseline (cancellation plumbing must not strand goroutines).
func checkNoGoroutineLeak(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutine leak: %d before, %d after\n%s",
				before, runtime.NumGoroutine(), buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// startDaemon runs one in-process parafiled and returns its address.
func startDaemon(t *testing.T, cfg rpc.ServerConfig) string {
	t.Helper()
	srv := rpc.NewServer(cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("shutdown: %v", err)
		}
		if err := <-done; err != nil {
			t.Errorf("serve: %v", err)
		}
	})
	return ln.Addr().String()
}

// workloadResult mirrors the rpc transport-equivalence observation
// points: subfiles after the write, per-view read-backs, and the
// subfiles of a redistributed copy.
type workloadResult struct {
	subfiles    [][]byte
	reads       [][]byte
	redistSubs  [][]byte
	groundTruth []byte
}

// runWorkload drives write -> read-back -> redistribute on a 4+4
// cluster with the given transport configuration.
func runWorkload(t *testing.T, n int64, cfg clusterfile.Config) *workloadResult {
	t.Helper()
	w, err := bench.NewWorkloadWithConfig("c", n, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ops, err := w.WriteAll(clusterfile.ToBufferCache)
	if err != nil {
		t.Fatal(err)
	}
	for i, op := range ops {
		if op.Err != nil || !op.Done() {
			t.Fatalf("node %d write: %v", i, op.Err)
		}
	}
	res := &workloadResult{groundTruth: w.Img}
	for i := 0; i < w.File.Phys.Pattern.Len(); i++ {
		b, err := w.File.ReadSubfile(i)
		if err != nil {
			t.Fatalf("subfile %d: %v", i, err)
		}
		res.subfiles = append(res.subfiles, b)
	}
	per := n * n / 4
	for i, v := range w.Views {
		out := make([]byte, per)
		op, err := v.StartRead(0, per-1, out)
		if err != nil {
			t.Fatal(err)
		}
		w.Cluster.RunAll()
		if op.Err != nil {
			t.Fatal(op.Err)
		}
		if !bytes.Equal(out, w.ViewBuf(i)) {
			t.Fatalf("node %d read-back differs from what it wrote", i)
		}
		res.reads = append(res.reads, out)
	}
	rowPat, err := bench.LayoutPattern("r", n)
	if err != nil {
		t.Fatal(err)
	}
	nf, rop, err := w.Cluster.StartRedistribute(w.File, "matrix.v2", part.MustFile(0, rowPat), nil, n*n)
	if err != nil {
		t.Fatal(err)
	}
	w.Cluster.RunAll()
	if rop.Err != nil || !rop.Done() {
		t.Fatalf("redistribute: %v", rop.Err)
	}
	for i := 0; i < nf.Phys.Pattern.Len(); i++ {
		b, err := nf.ReadSubfile(i)
		if err != nil {
			t.Fatalf("redistributed subfile %d: %v", i, err)
		}
		res.redistSubs = append(res.redistSubs, b)
	}
	if err := nf.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.File.Close(); err != nil {
		t.Fatal(err)
	}
	return res
}

// compareResults asserts byte-for-byte equality at every observation
// point of two workload runs.
func compareResults(t *testing.T, want, got *workloadResult, label string) {
	t.Helper()
	if !bytes.Equal(want.groundTruth, got.groundTruth) {
		t.Fatalf("%s: workloads generated different images (seed drift)", label)
	}
	if len(want.subfiles) != len(got.subfiles) {
		t.Fatalf("%s: subfile counts differ: %d vs %d", label, len(want.subfiles), len(got.subfiles))
	}
	for i := range want.subfiles {
		if !bytes.Equal(want.subfiles[i], got.subfiles[i]) {
			t.Errorf("%s: subfile %d differs", label, i)
		}
	}
	for i := range want.reads {
		if !bytes.Equal(want.reads[i], got.reads[i]) {
			t.Errorf("%s: view read %d differs", label, i)
		}
	}
	for i := range want.redistSubs {
		if !bytes.Equal(want.redistSubs[i], got.redistSubs[i]) {
			t.Errorf("%s: redistributed subfile %d differs", label, i)
		}
	}
}

// --- grammar -------------------------------------------------------

func TestParseSpec(t *testing.T) {
	cases := []struct {
		spec  string
		rules int
		ok    bool
	}{
		{"", 0, true},
		{"error:0.01", 1, true},
		{"error:0.01,delay:5ms", 2, true},
		{"error-once", 1, true},
		{"corrupt:0.5", 1, true},
		{"failafter:65536", 1, true},
		{" error:1 , delay:1ms ", 2, true},
		{"error:2", 0, false},
		{"delay", 0, false},
		{"delay:xyz", 0, false},
		{"failafter:-1", 0, false},
		{"explode", 0, false},
	}
	for _, tc := range cases {
		plan, err := fault.ParseSpec(tc.spec, 1)
		if tc.ok != (err == nil) {
			t.Errorf("ParseSpec(%q): err=%v, want ok=%v", tc.spec, err, tc.ok)
			continue
		}
		if tc.ok && len(plan.Rules) != tc.rules {
			t.Errorf("ParseSpec(%q): %d rules, want %d", tc.spec, len(plan.Rules), tc.rules)
		}
	}
}

// TestInjectorDeterminism: the same seeded plan fed the same call
// order fires identically — the property that makes a failing fault
// run reproducible.
func TestInjectorDeterminism(t *testing.T) {
	plan := fault.Plan{Seed: 7, Rules: []fault.Rule{
		{Node: fault.AnyNode, Op: fault.OpLen, Kind: fault.ErrorAlways, Prob: 0.3},
	}}
	run := func() []bool {
		inj := fault.NewInjector(plan, nil)
		tr := inj.WrapTransport(clusterfile.NewLocalTransport(nil))
		cols, _ := part.ColBlocks(32, 32, 4)
		handles, err := tr.Open(context.Background(), "det", part.MustFile(0, cols), []int{0, 1, 2, 3})
		if err != nil {
			t.Fatal(err)
		}
		var fired []bool
		for i := 0; i < 64; i++ {
			_, err := handles[i%4].Len(context.Background())
			fired = append(fired, err != nil)
		}
		return fired
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("same seed diverged at call %d: %v vs %v", i, a, b)
		}
	}
}

// --- transparency --------------------------------------------------

// TestIdleInjectorTransportEquivalence: with an empty plan the fault
// layer is a pure pass-through — the full workload is byte-for-byte
// identical to the unwrapped local transport.
func TestIdleInjectorTransportEquivalence(t *testing.T) {
	const n = 64
	baseline := runWorkload(t, n, clusterfile.DefaultConfig())

	inj := fault.NewInjector(fault.Plan{}, nil)
	cfg := clusterfile.DefaultConfig()
	cfg.Transport = inj.WrapTransport(clusterfile.NewLocalTransport(nil))
	wrapped := runWorkload(t, n, cfg)

	compareResults(t, baseline, wrapped, "idle injector")
}

// --- partial-failure outcomes --------------------------------------

// TestOneNodeDownPartialError is the acceptance case: an error-always
// plan against I/O node 1 yields a PartialError naming exactly that
// node, and the sibling nodes' subfiles hold the same bytes a
// fault-free run produces (read-back verified).
func TestOneNodeDownPartialError(t *testing.T) {
	plan := fault.Plan{Rules: []fault.Rule{
		{Node: 1, Op: fault.OpScatter, Kind: fault.ErrorAlways},
		{Node: 1, Op: fault.OpWriteAt, Kind: fault.ErrorAlways},
	}}
	c, f, v, per, _ := faultCluster(t, plan, nil)
	buf := pattern(per)
	op, err := v.StartWrite(clusterfile.ToBufferCache, 0, per-1, buf)
	if err != nil {
		t.Fatal(err)
	}
	c.RunAll()

	pe := asPartial(t, op.Err)
	if pe.Op != "write" {
		t.Errorf("PartialError.Op = %q, want write", pe.Op)
	}
	if failed := pe.Nodes(clusterfile.OutcomeFailed); !eqInts(failed, []int{1}) {
		t.Fatalf("failed nodes %v, want [1]", failed)
	}
	if ok := pe.Nodes(clusterfile.OutcomeOK); !eqInts(ok, []int{0, 2, 3}) {
		t.Fatalf("ok nodes %v, want [0 2 3]", ok)
	}
	var ie *fault.InjectedError
	if !errors.As(op.Err, &ie) || ie.Node != 1 {
		t.Fatalf("PartialError should unwrap to the injected fault on node 1, got %v", op.Err)
	}
	for _, node := range pe.Nodes(clusterfile.OutcomeOK) {
		if out := pe.Outcome(node); out.Bytes == 0 {
			t.Errorf("ok node %d reports 0 bytes moved", node)
		}
	}

	// Sibling data intact: a fault-free control run of the identical
	// write must produce the same bytes in subfiles 0, 2 and 3.
	cc, cf, cv, _, _ := faultCluster(t, fault.Plan{}, nil)
	cop, err := cv.StartWrite(clusterfile.ToBufferCache, 0, per-1, buf)
	if err != nil {
		t.Fatal(err)
	}
	cc.RunAll()
	if cop.Err != nil {
		t.Fatalf("control write failed: %v", cop.Err)
	}
	for _, sub := range []int{0, 2, 3} {
		got, err := f.ReadSubfile(sub)
		if err != nil {
			t.Fatalf("subfile %d read-back: %v", sub, err)
		}
		want, err := cf.ReadSubfile(sub)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Errorf("sibling subfile %d corrupted by node 1's failure", sub)
		}
	}
}

// TestAllNodesDownPartialError: a wildcard error-always plan fails
// every I/O node; the outcome names all of them and none reports OK.
func TestAllNodesDownPartialError(t *testing.T) {
	plan := fault.Plan{Rules: []fault.Rule{
		{Node: fault.AnyNode, Op: fault.OpScatter, Kind: fault.ErrorAlways},
		{Node: fault.AnyNode, Op: fault.OpWriteAt, Kind: fault.ErrorAlways},
	}}
	c, _, v, per, _ := faultCluster(t, plan, nil)
	op, err := v.StartWrite(clusterfile.ToBufferCache, 0, per-1, pattern(per))
	if err != nil {
		t.Fatal(err)
	}
	c.RunAll()
	pe := asPartial(t, op.Err)
	if failed := pe.Nodes(clusterfile.OutcomeFailed); !eqInts(failed, []int{0, 1, 2, 3}) {
		t.Fatalf("failed nodes %v, want [0 1 2 3]", failed)
	}
	if ok := pe.Nodes(clusterfile.OutcomeOK); len(ok) != 0 {
		t.Fatalf("no node should be OK, got %v", ok)
	}
	if c.K.Pending() != 0 {
		t.Errorf("kernel left %d events pending", c.K.Pending())
	}
}

// TestMidWriteCrashPartialError: a node set that dies after the first
// two scatters of a collective write — two nodes land their bytes,
// two fail, and the outcome splits them exactly.
func TestMidWriteCrashPartialError(t *testing.T) {
	plan := fault.Plan{Rules: []fault.Rule{
		{Node: fault.AnyNode, Op: fault.OpScatter, Kind: fault.ErrorAlways, After: 2},
	}}
	c, _, v, per, inj := faultCluster(t, plan, nil)
	op, err := v.StartWrite(clusterfile.ToBufferCache, 0, per-1, pattern(per))
	if err != nil {
		t.Fatal(err)
	}
	c.RunAll()
	pe := asPartial(t, op.Err)
	okN := pe.Nodes(clusterfile.OutcomeOK)
	failedN := pe.Nodes(clusterfile.OutcomeFailed)
	if len(okN) != 2 || len(failedN) != 2 {
		t.Fatalf("want 2 ok + 2 failed, got ok=%v failed=%v", okN, failedN)
	}
	union := append(append([]int{}, okN...), failedN...)
	seen := map[int]bool{}
	for _, n := range union {
		seen[n] = true
	}
	if len(seen) != 4 {
		t.Fatalf("outcomes do not cover all 4 nodes: ok=%v failed=%v", okN, failedN)
	}
	if inj.Injected(0) != 2 {
		t.Errorf("rule fired %d times, want 2", inj.Injected(0))
	}
}

// TestReadFaultPartialError: the read path reports per-node outcomes
// too — a gather failure on node 3 names node 3.
func TestReadFaultPartialError(t *testing.T) {
	plan := fault.Plan{Rules: []fault.Rule{
		{Node: 3, Op: fault.OpGather, Kind: fault.ErrorAlways},
	}}
	c, _, v, per, _ := faultCluster(t, plan, nil)
	wop, err := v.StartWrite(clusterfile.ToBufferCache, 0, per-1, pattern(per))
	if err != nil {
		t.Fatal(err)
	}
	c.RunAll()
	if wop.Err != nil {
		t.Fatalf("write should be clean (plan only targets gathers): %v", wop.Err)
	}
	rop, err := v.StartRead(0, per-1, make([]byte, per))
	if err != nil {
		t.Fatal(err)
	}
	c.RunAll()
	pe := asPartial(t, rop.Err)
	if pe.Op != "read" {
		t.Errorf("PartialError.Op = %q, want read", pe.Op)
	}
	if failed := pe.Nodes(clusterfile.OutcomeFailed); !eqInts(failed, []int{3}) {
		t.Fatalf("failed nodes %v, want [3]", failed)
	}
}

// --- cancellation and deadlines ------------------------------------

// TestHangRespectsOpTimeout: a hang-until-cancel fault on one node is
// broken by the cluster's per-op deadline; the operation returns
// within the deadline (not wall-clock minutes later), classifies the
// hung node as cancelled, and leaks no goroutines.
func TestHangRespectsOpTimeout(t *testing.T) {
	before := runtime.NumGoroutine()
	plan := fault.Plan{Rules: []fault.Rule{
		{Node: 2, Op: fault.OpScatter, Kind: fault.Hang},
	}}
	c, _, v, per, _ := faultCluster(t, plan, func(cfg *clusterfile.Config) {
		cfg.OpTimeout = 150 * time.Millisecond
	})
	op, err := v.StartWrite(clusterfile.ToBufferCache, 0, per-1, pattern(per))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	c.RunAll()
	elapsed := time.Since(start)
	if elapsed > 5*time.Second {
		t.Fatalf("hung write took %v despite 150ms op deadline", elapsed)
	}
	pe := asPartial(t, op.Err)
	if !errors.Is(op.Err, context.DeadlineExceeded) {
		t.Fatalf("want deadline error in chain, got %v", op.Err)
	}
	out := pe.Outcome(2)
	if out == nil || out.State != clusterfile.OutcomeCancelled {
		t.Fatalf("hung node 2 outcome = %+v, want cancelled", out)
	}
	if len(pe.Nodes(clusterfile.OutcomeFailed)) != 0 {
		t.Errorf("deadline is a cancellation, not a node failure: %v", pe)
	}
	checkNoGoroutineLeak(t, before)
}

// TestCancelMidFlightWrite: an explicit caller cancel releases a hung
// write promptly and surfaces context.Canceled through PartialError.
func TestCancelMidFlightWrite(t *testing.T) {
	before := runtime.NumGoroutine()
	plan := fault.Plan{Rules: []fault.Rule{
		{Node: 1, Op: fault.OpScatter, Kind: fault.Hang},
	}}
	c, _, v, per, _ := faultCluster(t, plan, nil)
	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(50 * time.Millisecond)
		cancel()
	}()
	op, err := v.StartWriteCtx(ctx, clusterfile.ToBufferCache, 0, per-1, pattern(per))
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	c.RunAll()
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancelled write took %v to return", elapsed)
	}
	if op.Err == nil {
		t.Fatal("cancelled write reported success")
	}
	if !errors.Is(op.Err, context.Canceled) {
		t.Fatalf("want context.Canceled in chain, got %v", op.Err)
	}
	cancel()
	checkNoGoroutineLeak(t, before)
}

// TestCancelledConcurrentWrites drives several clusters concurrently
// against one shared daemon through fault-wrapped connections, each
// write cancelled mid-flight at a different moment. Its value is
// under -race: client pool, breaker, injector and server state must
// stay clean when cancellation lands at arbitrary points.
func TestCancelledConcurrentWrites(t *testing.T) {
	addr := startDaemon(t, rpc.ServerConfig{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			plan, err := fault.ParseSpec("delay:200us", int64(i))
			if err != nil {
				t.Error(err)
				return
			}
			inj := fault.NewInjector(plan, nil)
			tr, err := rpc.NewTransport([]string{addr}, rpc.Options{
				Client: rpc.ClientConfig{
					Dialer:      inj.Dialer(nil),
					BackoffBase: time.Millisecond,
					MaxRetries:  2,
				},
			})
			if err != nil {
				t.Error(err)
				return
			}
			defer tr.Close()
			cfg := clusterfile.DefaultConfig()
			cfg.Transport = tr
			c, _, v, per, err := buildCluster(cfg, fmt.Sprintf("race-%d", i))
			if err != nil {
				t.Error(err)
				return
			}
			ctx, cancel := context.WithCancel(context.Background())
			defer cancel()
			go func() {
				time.Sleep(time.Duration(i) * 2 * time.Millisecond)
				cancel()
			}()
			op, err := v.StartWriteCtx(ctx, clusterfile.ToBufferCache, 0, per-1, pattern(per))
			if err != nil {
				return // cancelled before the op could start: fine
			}
			c.RunAll()
			// The op may have finished cleanly (late cancel) or
			// partially (early cancel); both are legal. The kernel
			// must drain either way.
			_ = op.Err
			if c.K.Pending() != 0 {
				t.Errorf("writer %d: kernel left %d events pending", i, c.K.Pending())
			}
		}(i)
	}
	wg.Wait()
}

// --- equivalence under injected connection faults ------------------

// TestFaultPlanTransportEquivalence: connection-level fault plans that
// the rpc client can absorb through idempotent retries (transient
// errors, one-shot errors, delays) must not change a single byte of
// the workload relative to the in-process transport. Corrupt and
// failafter plans are deliberately absent: they surface as hard
// errors by design, not as silently-healed retries.
func TestFaultPlanTransportEquivalence(t *testing.T) {
	const n = 64
	baseline := runWorkload(t, n, clusterfile.DefaultConfig())

	plans := []struct {
		name string
		spec string
		kind string // expected MetricInjected label
	}{
		{"error-once", "error-once", "error-once"},
		{"error-5pct", "error:0.05", "error-always"},
		{"delay-1ms", "delay:1ms", "delay"},
	}
	for _, tc := range plans {
		t.Run(tc.name, func(t *testing.T) {
			plan, err := fault.ParseSpec(tc.spec, 42)
			if err != nil {
				t.Fatal(err)
			}
			reg := obs.NewRegistry()
			inj := fault.NewInjector(plan, reg)
			addrs := []string{
				startDaemon(t, rpc.ServerConfig{}),
				startDaemon(t, rpc.ServerConfig{}),
			}
			tr, err := rpc.NewTransport(addrs, rpc.Options{
				Client: rpc.ClientConfig{
					Dialer: inj.Dialer(nil),
					// Generous retries, no breaker: this test proves
					// the retry path heals the plan, not that the
					// breaker eventually gives up on it.
					MaxRetries:       10,
					BackoffBase:      time.Millisecond,
					BackoffMax:       20 * time.Millisecond,
					BreakerThreshold: -1,
				},
			})
			if err != nil {
				t.Fatal(err)
			}
			defer tr.Close()
			cfg := clusterfile.DefaultConfig()
			cfg.Transport = tr
			res := runWorkload(t, n, cfg)
			compareResults(t, baseline, res, tc.name)

			// The plan must actually have fired — an inert injector
			// would make this test vacuous.
			fired := reg.Counter(fault.MetricInjected + `{kind="` + tc.kind + `"}`).Value()
			if fired == 0 {
				t.Fatalf("plan %q injected no faults", tc.spec)
			}
		})
	}
}

package fault

import (
	"context"
	"net"
	"time"
)

// conn.go injects faults at the connection layer, underneath the rpc
// framing: dial failures, per-operation errors and delays, one-byte
// frame corruption, and fail-after-N-bytes stream death. Client-side,
// Dialer slots into rpc.ClientConfig.Dialer; server-side, WrapListener
// wraps the daemon's TCP listener (the parafiled -fault flag), so
// degraded daemons need no test-only hooks. These faults exercise the
// rpc retry/timeout/breaker machinery: an idempotent request that dies
// mid-stream is retried on a fresh conn, exactly like a real reset.

// DialFunc matches rpc.ClientConfig.Dialer.
type DialFunc func(ctx context.Context, network, addr string) (net.Conn, error)

// Dialer wraps a dial function (nil for a plain TCP dial) so every
// connection it produces carries the injector's connection faults.
// Connections match rules as AnyNode.
func (inj *Injector) Dialer(inner DialFunc) DialFunc {
	if inner == nil {
		inner = func(ctx context.Context, network, addr string) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, network, addr)
		}
	}
	return func(ctx context.Context, network, addr string) (net.Conn, error) {
		if err := inj.fire(ctx, AnyNode, OpDial, ""); err != nil {
			return nil, err
		}
		conn, err := inner(ctx, network, addr)
		if err != nil {
			return nil, err
		}
		return inj.WrapConn(conn), nil
	}
}

// WrapListener wraps a listener so every accepted connection carries
// the injector's connection faults.
func (inj *Injector) WrapListener(ln net.Listener) net.Listener {
	return &faultListener{Listener: ln, inj: inj}
}

type faultListener struct {
	net.Listener
	inj *Injector
}

func (l *faultListener) Accept() (net.Conn, error) {
	conn, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.inj.WrapConn(conn), nil
}

// WrapConn layers the injector's connection faults over one conn.
func (inj *Injector) WrapConn(conn net.Conn) net.Conn {
	return &faultConn{Conn: conn, inj: inj}
}

// faultConn applies the plan to each Read/Write. Connections carry no
// context, so Delay rules sleep unconditionally (bounded in practice
// by the peer's deadlines) and Hang rules are inert here.
type faultConn struct {
	net.Conn
	inj *Injector
}

// connFault runs the schedule for one conn operation. A fired error
// rule closes the conn so the peer observes a reset, not a stall; a
// fired Corrupt rule is reported back for the caller to apply to the
// payload. First fired rule wins, as everywhere.
func (c *faultConn) connFault(op Op) (corrupt bool, err error) {
	r := c.inj.decide(AnyNode, op, "")
	if r == nil {
		return false, nil
	}
	switch r.Kind {
	case ErrorOnce, ErrorAlways:
		c.Conn.Close()
		return false, errFor(r, AnyNode, op)
	case Delay:
		time.Sleep(r.Delay)
	case Corrupt:
		return true, nil
	}
	return false, nil
}

func (c *faultConn) Read(p []byte) (int, error) {
	corrupt, err := c.connFault(OpConnRead)
	if err != nil {
		return 0, err
	}
	n, err := c.Conn.Read(p)
	if n > 0 {
		if berr := c.inj.accountBytes(AnyNode, OpConnRead, "", int64(n)); berr != nil {
			c.Conn.Close()
			return 0, berr
		}
		if corrupt {
			c.inj.corruptByte(p[:n])
		}
	}
	return n, err
}

func (c *faultConn) Write(p []byte) (int, error) {
	corrupt, err := c.connFault(OpConnWrite)
	if err != nil {
		return 0, err
	}
	if err := c.inj.accountBytes(AnyNode, OpConnWrite, "", int64(len(p))); err != nil {
		c.Conn.Close()
		return 0, err
	}
	if corrupt {
		// Corrupt a copy: the caller's buffer (possibly pooled and
		// reused) must stay intact.
		tmp := append([]byte(nil), p...)
		c.inj.corruptByte(tmp)
		return c.Conn.Write(tmp)
	}
	return c.Conn.Write(p)
}

// Package fault is the deterministic fault-injection layer of the
// Clusterfile reproduction: it wraps a clusterfile.Transport (and raw
// network connections) with programmable per-I/O-node fault plans so
// the partial-failure semantics of the fan-out path — PartialError
// outcomes, per-op deadlines, sibling cancellation, the rpc circuit
// breaker — can be exercised reproducibly in tests, demos and CI.
//
// A Plan is a list of Rules. Each rule names the I/O node it applies
// to (or all of them), the operation it intercepts, the fault Kind,
// and a schedule — skip the first After matching calls, fire at most
// Times times, every Every-th call, with probability Prob. Scheduling
// state lives in the Injector and the random source is seeded, so the
// same plan against the same (deterministic) operation order
// reproduces the same faults exactly.
//
// Two injection points cover the whole path:
//
//   - Injector.WrapTransport intercepts SubfileHandle operations —
//     storage-level faults (error-once, error-always, delay,
//     hang-until-cancel) that surface as per-node outcomes in
//     clusterfile's PartialError;
//   - Injector.Dialer / Injector.WrapListener intercept raw
//     connections — wire-level faults (errors, delays, corrupt-frame,
//     fail-after-N-bytes) that exercise the rpc client's retry,
//     timeout and breaker machinery underneath an unchanged transport.
package fault

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"time"

	"parafile/internal/obs"
	"parafile/internal/qos"
)

// Kind is the fault a rule injects.
type Kind int

const (
	// ErrorOnce fails the first scheduled call, then never again
	// (shorthand for ErrorAlways with Times=1).
	ErrorOnce Kind = iota
	// ErrorAlways fails every scheduled call.
	ErrorAlways
	// Delay sleeps for the rule's Delay before letting the call
	// proceed (interruptible by the operation context).
	Delay
	// Hang blocks until the operation context is cancelled, then
	// returns its error — the crashed-but-not-closed daemon case.
	// Meaningless on raw connections (no context); use Delay there.
	Hang
	// Corrupt flips one byte of the payload in flight. On a wrapped
	// connection that is frame corruption; on a wrapped transport's
	// data-carrying operations (WriteAt/Scatter/ReadAt/Gather) the
	// bytes are damaged SILENTLY — the call succeeds with a flipped
	// byte, the bit-rot a scrub must catch. Non-data transport
	// operations degenerate to a plain injected error.
	Corrupt
	// FailAfterBytes lets the rule's Bytes flow through a wrapped
	// connection, then fails it permanently — the mid-stream crash.
	// Connection-level only.
	FailAfterBytes
	// Overload answers scheduled calls with the typed admission
	// backpressure error (qos.Overload carrying the rule's Delay as
	// the RetryAfter hint) — exercising every overload-handling path
	// without needing a genuinely saturated daemon: clients must back
	// off without tripping breakers, collectives must report shed.
	Overload
)

func (k Kind) String() string {
	switch k {
	case ErrorOnce:
		return "error-once"
	case ErrorAlways:
		return "error-always"
	case Delay:
		return "delay"
	case Hang:
		return "hang"
	case Corrupt:
		return "corrupt"
	case FailAfterBytes:
		return "fail-after-bytes"
	case Overload:
		return "overload"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Op names the intercepted operation class a rule matches.
type Op string

const (
	// OpAny matches every operation at its injection point.
	OpAny Op = ""
	// Transport-level operations (WrapTransport).
	OpOpen      Op = "open"
	OpEnsureLen Op = "ensure_len"
	OpLen       Op = "len"
	OpWriteAt   Op = "write_at"
	OpReadAt    Op = "read_at"
	OpScatter   Op = "scatter"
	OpGather    Op = "gather"
	OpChecksum  Op = "checksum"
	// Connection-level operations (Dialer / WrapListener).
	OpDial      Op = "dial"
	OpConnRead  Op = "conn_read"
	OpConnWrite Op = "conn_write"
	// Metadata-service operations (meta store durability points,
	// injected via Fire). file carries the namespace entry's name.
	OpMetaAppend   Op = "meta_append"
	OpMetaSnapshot Op = "meta_snapshot"
	// Metadata replication-path operations (injected via Fire by the
	// group): a leader's quorum replication round and a candidate's
	// election round. Delay rules widen windows; error rules force
	// failed rounds (ErrNotCommitted on clients) and lost elections.
	OpMetaReplicate Op = "meta_replicate"
	OpMetaVote      Op = "meta_vote"
)

// AnyNode makes a rule match every I/O node (and every connection).
const AnyNode = -1

// Rule is one programmable fault: where it applies, what it injects,
// and when it fires.
type Rule struct {
	// Node is the I/O node the rule targets (AnyNode for all).
	// Connection-level rules match by AnyNode unless the conn was
	// opened for a known node.
	Node int
	// Op restricts the rule to one operation class (OpAny for all at
	// the rule's injection point).
	Op Op
	// File restricts a transport-level rule to one store name — the
	// name the transport's Open received, which with replication is
	// clusterfile.ReplicaName(file, r), so a rule can target a single
	// replica tier (e.g. "eq~r1") while its siblings stay healthy.
	// Empty matches every file; connection-level calls carry no file.
	File string
	// Kind is the injected fault.
	Kind Kind
	// Err overrides the injected error (default: an *InjectedError
	// describing the rule).
	Err error
	// Delay is the sleep of a Delay rule.
	Delay time.Duration
	// Bytes is the budget of a FailAfterBytes rule.
	Bytes int64
	// After skips the first After matching calls.
	After int
	// Times caps how often the rule fires (0 = unlimited).
	Times int
	// Every fires on every Every-th matching call past After (0 and 1
	// mean every call).
	Every int
	// Prob fires with this probability (0 means always, i.e. 1.0),
	// drawn from the injector's seeded source.
	Prob float64
}

// matches reports whether the rule applies to (node, op, file).
func (r *Rule) matches(node int, op Op, file string) bool {
	if r.Node != AnyNode && r.Node != node {
		return false
	}
	if r.File != "" && r.File != file {
		return false
	}
	return r.Op == OpAny || r.Op == op
}

// Plan is a reproducible fault schedule.
type Plan struct {
	// Seed initialises the injector's random source (used by Prob and
	// Corrupt byte selection). The same seed and call order reproduce
	// the same faults.
	Seed int64
	// Rules are evaluated in order; the first one that fires wins.
	Rules []Rule
}

// InjectedError is the error an injected fault surfaces (unless the
// rule carries its own Err). errors.As identifies injected faults in
// tests and keeps them distinct from genuine transport errors.
type InjectedError struct {
	Node int
	Op   Op
	Kind Kind
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("fault: injected %s on node %d (%s)", e.Kind, e.Node, e.Op)
}

// MetricInjected counts injected faults by kind:
// parafile_fault_injected_total{kind="..."}.
const MetricInjected = "parafile_fault_injected_total"

// ruleState is one rule's mutable schedule state.
type ruleState struct {
	seen  int // matching calls observed
	fired int // times the rule fired
	moved int64
}

// Injector evaluates a Plan. One injector carries the schedule state
// for every wrapper derived from it, so a test's transport and
// connection faults share one deterministic timeline. Safe for
// concurrent use.
type Injector struct {
	mu    sync.Mutex
	plan  Plan
	state []ruleState
	rng   *rand.Rand
	met   map[Kind]*obs.Counter
}

// NewInjector compiles a plan. reg (nil allowed) receives the
// MetricInjected counters.
func NewInjector(plan Plan, reg *obs.Registry) *Injector {
	inj := &Injector{
		plan:  plan,
		state: make([]ruleState, len(plan.Rules)),
		rng:   rand.New(rand.NewSource(plan.Seed)),
		met:   make(map[Kind]*obs.Counter),
	}
	for _, k := range []Kind{ErrorOnce, ErrorAlways, Delay, Hang, Corrupt, FailAfterBytes, Overload} {
		inj.met[k] = reg.Counter(fmt.Sprintf(`%s{kind="%s"}`, MetricInjected, k))
	}
	return inj
}

// Injected returns how many faults rule i has injected.
func (inj *Injector) Injected(i int) int {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	if i < 0 || i >= len(inj.state) {
		return 0
	}
	return inj.state[i].fired
}

// decide returns the first rule scheduled to fire for (node, op,
// file), or nil. It advances every matching rule's schedule state.
func (inj *Injector) decide(node int, op Op, file string) *Rule {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	var hit *Rule
	for i := range inj.plan.Rules {
		r := &inj.plan.Rules[i]
		if r.Kind == FailAfterBytes {
			continue // byte-budget rules live in accountBytes
		}
		if !r.matches(node, op, file) {
			continue
		}
		st := &inj.state[i]
		st.seen++
		if hit != nil {
			continue // earlier rule already fired; later ones only count
		}
		if st.seen <= r.After {
			continue
		}
		if r.Times > 0 && st.fired >= r.Times {
			continue
		}
		if r.Kind == ErrorOnce && st.fired >= 1 {
			continue
		}
		if r.Every > 1 && (st.seen-r.After-1)%r.Every != 0 {
			continue
		}
		if r.Prob > 0 && r.Prob < 1 && inj.rng.Float64() >= r.Prob {
			continue
		}
		st.fired++
		inj.met[r.Kind].Inc()
		hit = r
	}
	return hit
}

// annotate marks a fired fault on the operation's distributed trace,
// when the context carries one: a zero-length failed child span named
// fault.<kind>, so the injected fault shows up in the stitched tree
// exactly where it struck. Untraced contexts cost one nil check.
func annotate(ctx context.Context, r *Rule, node int, op Op) {
	sp := obs.SpanFromContext(ctx)
	if sp.TraceID() == 0 {
		return
	}
	c := sp.StartChild(fmt.Sprintf("fault.%s node=%d op=%s", r.Kind, node, op))
	c.Fail()
	c.End()
}

// errFor materializes the injected error of a fired rule.
func errFor(r *Rule, node int, op Op) error {
	if r.Err != nil {
		return r.Err
	}
	if r.Kind == Overload {
		// The typed backpressure error, exactly as a saturated
		// daemon's admission controller would answer.
		return &qos.Overload{RetryAfter: r.Delay, Reason: "injected"}
	}
	return &InjectedError{Node: node, Op: op, Kind: r.Kind}
}

// Fire evaluates the plan for one call at an arbitrary injection
// point and executes the fault — the hook subsystems outside the
// transport seam (the metadata store's durability points) use to join
// the injector's deterministic timeline. Returns the injected error,
// sleeps the delay, or hangs until ctx is cancelled; nil means the
// call proceeds.
func (inj *Injector) Fire(ctx context.Context, node int, op Op, file string) error {
	return inj.fire(ctx, node, op, file)
}

// fire evaluates the plan for one transport-level call and executes
// the fault: returns the injected error, sleeps the delay, or hangs
// until ctx is cancelled. nil means the call proceeds.
func (inj *Injector) fire(ctx context.Context, node int, op Op, file string) error {
	r := inj.decide(node, op, file)
	if r == nil {
		return nil
	}
	annotate(ctx, r, node, op)
	switch r.Kind {
	case ErrorOnce, ErrorAlways, Corrupt, Overload:
		// Corrupt degenerates to a plain error on non-data calls.
		return errFor(r, node, op)
	case Delay:
		timer := time.NewTimer(r.Delay)
		defer timer.Stop()
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-timer.C:
		}
		return nil
	case Hang:
		<-ctx.Done()
		return ctx.Err()
	}
	return nil
}

// fireData evaluates the plan for a data-carrying transport call
// (WriteAt/Scatter/ReadAt/Gather). A fired Corrupt rule returns
// (true, nil): the caller must flip a payload byte and let the call
// succeed — silent bit-rot only a scrub can catch. Everything else
// behaves as fire does.
func (inj *Injector) fireData(ctx context.Context, node int, op Op, file string) (corrupt bool, err error) {
	r := inj.decide(node, op, file)
	if r == nil {
		return false, nil
	}
	annotate(ctx, r, node, op)
	switch r.Kind {
	case Corrupt:
		return true, nil
	case ErrorOnce, ErrorAlways:
		return false, errFor(r, node, op)
	case Delay:
		timer := time.NewTimer(r.Delay)
		defer timer.Stop()
		select {
		case <-ctx.Done():
			return false, ctx.Err()
		case <-timer.C:
		}
		return false, nil
	case Hang:
		<-ctx.Done()
		return false, ctx.Err()
	}
	return false, nil
}

// accountBytes charges n moved bytes against every matching
// FailAfterBytes rule; an exhausted budget fails the call (and every
// later one — the budget stays exhausted).
func (inj *Injector) accountBytes(node int, op Op, file string, n int64) error {
	inj.mu.Lock()
	defer inj.mu.Unlock()
	for i := range inj.plan.Rules {
		r := &inj.plan.Rules[i]
		if r.Kind != FailAfterBytes || !r.matches(node, op, file) {
			continue
		}
		st := &inj.state[i]
		st.moved += n
		if st.moved > r.Bytes {
			st.fired++
			inj.met[FailAfterBytes].Inc()
			return errFor(r, node, op)
		}
	}
	return nil
}

// corruptByte flips one random byte of p (no-op on empty payloads).
func (inj *Injector) corruptByte(p []byte) {
	if len(p) == 0 {
		return
	}
	inj.mu.Lock()
	i := inj.rng.Intn(len(p))
	inj.mu.Unlock()
	p[i] ^= 0xFF
}

// ParseSpec parses the compact connection-fault grammar of the
// parafiled -fault flag: a comma-separated list of
//
//	error:<prob>       fail conn reads/writes with probability prob
//	error-once         fail the first conn operation, once
//	delay:<duration>   sleep before every conn operation
//	corrupt:<prob>     flip one byte of passing data with probability
//	failafter:<bytes>  let bytes flow, then fail the conn permanently
//	overload:<dur>     answer with typed overload backpressure whose
//	                   RetryAfter hint is dur (transport seam only)
//
// e.g. "error:0.01,delay:5ms". The rules target every connection
// (AnyNode). seed makes probabilistic schedules reproducible.
func ParseSpec(spec string, seed int64) (Plan, error) {
	plan := Plan{Seed: seed}
	if strings.TrimSpace(spec) == "" {
		return plan, nil
	}
	for _, tok := range strings.Split(spec, ",") {
		tok = strings.TrimSpace(tok)
		if tok == "" {
			continue
		}
		name, arg, hasArg := strings.Cut(tok, ":")
		rule := Rule{Node: AnyNode}
		switch name {
		case "error":
			rule.Kind = ErrorAlways
			if hasArg {
				p, err := strconv.ParseFloat(arg, 64)
				if err != nil || p < 0 || p > 1 {
					return plan, fmt.Errorf("fault: bad error probability %q", arg)
				}
				rule.Prob = p
			}
		case "error-once":
			rule.Kind = ErrorOnce
		case "delay":
			if !hasArg {
				return plan, fmt.Errorf("fault: delay needs a duration (delay:5ms)")
			}
			d, err := time.ParseDuration(arg)
			if err != nil {
				return plan, fmt.Errorf("fault: bad delay %q: %v", arg, err)
			}
			rule.Kind = Delay
			rule.Delay = d
		case "corrupt":
			rule.Kind = Corrupt
			if hasArg {
				p, err := strconv.ParseFloat(arg, 64)
				if err != nil || p < 0 || p > 1 {
					return plan, fmt.Errorf("fault: bad corrupt probability %q", arg)
				}
				rule.Prob = p
			}
		case "overload":
			rule.Kind = Overload
			if hasArg {
				d, err := time.ParseDuration(arg)
				if err != nil {
					return plan, fmt.Errorf("fault: bad overload retry-after %q: %v", arg, err)
				}
				rule.Delay = d
			}
		case "failafter":
			if !hasArg {
				return plan, fmt.Errorf("fault: failafter needs a byte count (failafter:65536)")
			}
			n, err := strconv.ParseInt(arg, 10, 64)
			if err != nil || n < 0 {
				return plan, fmt.Errorf("fault: bad failafter byte count %q", arg)
			}
			rule.Kind = FailAfterBytes
			rule.Bytes = n
		default:
			return plan, fmt.Errorf("fault: unknown fault %q (want error, error-once, delay, corrupt, failafter, overload)", name)
		}
		plan.Rules = append(plan.Rules, rule)
	}
	return plan, nil
}

package core

import (
	"fmt"

	"parafile/internal/falls"
	"parafile/internal/part"
)

// compose.go implements hierarchical partitioning: refining one
// element of a partition by a sub-pattern applied to that element's
// linear space. This is the "view of a view" the unified file model
// makes natural — a subfile further partitioned over local disks, or a
// view re-partitioned among the threads of one process — and it works
// because subfiles and views are both linear-addressable instances of
// the same model (§5).

// ComposePattern replaces element elem of the file's pattern with the
// elements of sub, each pulled back through MAP⁻¹ into the file's
// pattern coordinates. The sub-pattern partitions the element's linear
// space; its size must divide the element's bytes per pattern period.
// Element names are prefixed with the refined element's name.
func ComposePattern(f *part.File, elem int, sub *part.Pattern) (*part.Pattern, error) {
	if f == nil || sub == nil {
		return nil, fmt.Errorf("core: nil file or sub-pattern")
	}
	if elem < 0 || elem >= f.Pattern.Len() {
		return nil, fmt.Errorf("core: element %d out of range [0,%d)", elem, f.Pattern.Len())
	}
	target := f.Pattern.Element(elem)
	size := target.Set.Size()
	if size%sub.Size() != 0 {
		return nil, fmt.Errorf("core: sub-pattern size %d does not divide element size %d",
			sub.Size(), size)
	}
	var elems []part.Element
	for i := 0; i < f.Pattern.Len(); i++ {
		if i != elem {
			elems = append(elems, f.Pattern.Element(i))
		}
	}
	for t := 0; t < sub.Len(); t++ {
		set, err := pullBack(target.Set, sub.Element(t).Set, sub.Size())
		if err != nil {
			return nil, err
		}
		elems = append(elems, part.Element{
			Name: target.Name + "/" + sub.Element(t).Name,
			Set:  set,
		})
	}
	return part.NewPattern(elems...)
}

// pullBack computes the pattern-coordinate byte set of a sub-element:
// the positions of elemSet whose element-space offsets are selected by
// subSet (applied periodically with the given period).
func pullBack(elemSet falls.Set, subSet falls.Set, period int64) (falls.Set, error) {
	var segs []falls.LineSegment
	off := int64(0) // running element-space offset
	elemSet.Walk(func(seg falls.LineSegment) bool {
		// Element offsets [off, off+len) correspond to pattern
		// coordinates [seg.L, seg.R]; select the sub-pattern's bytes
		// within that element-offset window.
		lo, hi := off, off+seg.Len()-1
		for k := lo / period; k*period <= hi; k++ {
			base := k * period
			subSet.Walk(func(s falls.LineSegment) bool {
				a := s.L + base
				b := s.R + base
				if b < lo {
					return true
				}
				if a > hi {
					return false
				}
				if a < lo {
					a = lo
				}
				if b > hi {
					b = hi
				}
				segs = append(segs, falls.LineSegment{
					L: seg.L + (a - off),
					R: seg.L + (b - off),
				})
				return true
			})
		}
		off += seg.Len()
		return true
	})
	set := falls.LeavesToSet(segs)
	if err := set.Validate(); err != nil {
		return nil, err
	}
	return set, nil
}

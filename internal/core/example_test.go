package core_test

import (
	"fmt"

	"parafile/internal/core"
	"parafile/internal/falls"
	"parafile/internal/part"
)

// The paper's §6 worked example: the Figure 3 file (displacement 2,
// three 2-byte stripes) maps file offset 10 onto subfile 1's offset 2.
func ExampleMapper() {
	pattern := part.MustPattern(
		part.Element{Name: "s0", Set: falls.Set{falls.MustLeaf(0, 1, 6, 1)}},
		part.Element{Name: "s1", Set: falls.Set{falls.MustLeaf(2, 3, 6, 1)}},
		part.Element{Name: "s2", Set: falls.Set{falls.MustLeaf(4, 5, 6, 1)}},
	)
	file := part.MustFile(2, pattern)
	m := core.MustMapper(file, 1)

	v, _ := m.Map(10)
	x, _ := m.MapInv(v)
	fmt.Println("MAP_S1(10) =", v)
	fmt.Println("MAP⁻¹_S1(2) =", x)

	// Offsets owned by other subfiles snap with next/previous maps.
	m0 := core.MustMapper(file, 0)
	next, _ := m0.MapNext(5)
	prev, _ := m0.MapPrev(5)
	fmt.Println("next map of 5 on s0 =", next)
	fmt.Println("previous map of 5 on s0 =", prev)
	// Output:
	// MAP_S1(10) = 2
	// MAP⁻¹_S1(2) = 10
	// next map of 5 on s0 = 2
	// previous map of 5 on s0 = 1
}

// MapBetween composes MAP_S ∘ MAP⁻¹_V to map between two partitions of
// the same file (§6.2); identical partitions compose to the identity.
func ExampleMapBetween() {
	rows, _ := part.RowBlocks(8, 8, 4)
	phys := part.MustFile(0, rows)
	logi := part.MustFile(0, rows)
	v := core.MustMapper(logi, 2)
	s := core.MustMapper(phys, 2)
	got, _ := core.MapBetween(v, s, 7)
	fmt.Println(got)
	// Output:
	// 7
}

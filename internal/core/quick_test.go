package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"parafile/internal/part"
)

// quick_test.go: testing/quick invariants for the mapping functions.

// genLayout draws one of the standard matrix partitions plus a
// displacement.
type genLayout struct {
	file *part.File
	elem int
}

func (genLayout) Generate(rng *rand.Rand, _ int) reflect.Value {
	var pat *part.Pattern
	var err error
	switch rng.Intn(4) {
	case 0:
		pat, err = part.RowBlocks(8, 8, 4)
	case 1:
		pat, err = part.ColBlocks(8, 8, 4)
	case 2:
		pat, err = part.SquareBlocks(8, 8, 2, 2)
	default:
		pat, err = part.Cyclic1D(64, 4, 4)
	}
	if err != nil {
		panic(err)
	}
	return reflect.ValueOf(genLayout{
		file: part.MustFile(rng.Int63n(8), pat),
		elem: rng.Intn(pat.Len()),
	})
}

// TestQuickRoundTrip: MAP⁻¹(MAP(x)) == x wherever MAP is defined, and
// MAP(MAP⁻¹(y)) == y everywhere.
func TestQuickRoundTrip(t *testing.T) {
	f := func(l genLayout, yRaw uint16) bool {
		m := MustMapper(l.file, l.elem)
		y := int64(yRaw) % (4 * m.ElementSize())
		x, err := m.MapInv(y)
		if err != nil {
			return false
		}
		back, err := m.Map(x)
		if err != nil || back != y {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestQuickNextIdempotent: MapNext of a mapped offset equals Map, and
// MapNext is monotone in x.
func TestQuickNextIdempotent(t *testing.T) {
	f := func(l genLayout, xRaw uint16) bool {
		m := MustMapper(l.file, l.elem)
		x := l.file.Displacement + int64(xRaw)%(3*l.file.Pattern.Size())
		next, err := m.MapNext(x)
		if err != nil {
			return false
		}
		if v, err := m.Map(x); err == nil && v != next {
			return false
		}
		next2, err := m.MapNext(x + 1)
		if err != nil {
			return false
		}
		return next2 >= next
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Error(err)
	}
}

// TestQuickElementsPartition: for every file offset, exactly one
// element maps it — the partition property MAP relies on.
func TestQuickElementsPartition(t *testing.T) {
	f := func(l genLayout, xRaw uint16) bool {
		x := l.file.Displacement + int64(xRaw)%(2*l.file.Pattern.Size())
		mapped := 0
		for e := 0; e < l.file.Pattern.Len(); e++ {
			if _, err := MustMapper(l.file, e).Map(x); err == nil {
				mapped++
			}
		}
		return mapped == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestQuickCompositionConsistency: for two partitions of the same
// file, MapBetween(from, to, y) agrees with mapping through the file
// offset explicitly.
func TestQuickCompositionConsistency(t *testing.T) {
	f := func(a, b genLayout, yRaw uint16) bool {
		// Re-home both partitions to a common displacement so they
		// partition the same region.
		src := part.MustFile(2, a.file.Pattern)
		dst := part.MustFile(2, b.file.Pattern)
		if src.Pattern.Size() != dst.Pattern.Size() {
			return true // different underlying sizes: skip draw
		}
		from := MustMapper(src, a.elem)
		y := int64(yRaw) % (2 * from.ElementSize())
		x, err := from.MapInv(y)
		if err != nil {
			return false
		}
		e, err := dst.ElementOf(x)
		if err != nil {
			return false
		}
		to := MustMapper(dst, e)
		direct, err := MapBetween(from, to, y)
		if err != nil {
			return false
		}
		explicit, err := to.Map(x)
		return err == nil && direct == explicit
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

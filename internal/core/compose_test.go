package core

import (
	"math/rand"
	"testing"

	"parafile/internal/part"
)

// TestComposeRowThenColumn: refine one row stripe of a matrix by a
// column split — a subfile partitioned over two local disks.
func TestComposeRowThenColumn(t *testing.T) {
	const n = 8
	rows, err := part.RowBlocks(n, n, 4)
	if err != nil {
		t.Fatal(err)
	}
	f := part.MustFile(0, rows)
	// Element 1 (rows 2-3) split into two column halves of its own
	// 2×8 space.
	sub, err := part.ColBlocks(2, n, 2)
	if err != nil {
		t.Fatal(err)
	}
	composed, err := ComposePattern(f, 1, sub)
	if err != nil {
		t.Fatal(err)
	}
	if composed.Len() != 5 { // 3 untouched + 2 refined
		t.Fatalf("composed pattern has %d elements, want 5", composed.Len())
	}
	// Ownership oracle: matrix byte (r, c) with r in {2,3} belongs to
	// the refined half c/4; all other rows keep their stripes.
	cf := part.MustFile(0, composed)
	for r := int64(0); r < n; r++ {
		for c := int64(0); c < n; c++ {
			e, err := cf.ElementOf(r*n + c)
			if err != nil {
				t.Fatal(err)
			}
			name := composed.Element(e).Name
			if r >= 2 && r < 4 {
				want := "p(1,0)/p(0,0)"
				if c >= 4 {
					want = "p(1,0)/p(0,1)"
				}
				if name != want {
					t.Fatalf("byte (%d,%d) owned by %q, want %q", r, c, name, want)
				}
			} else if name == "p(1,0)/p(0,0)" || name == "p(1,0)/p(0,1)" {
				t.Fatalf("byte (%d,%d) wrongly captured by refined element %q", r, c, name)
			}
		}
	}
}

// TestComposeMappingConsistency: the refined element's mapping equals
// the composition of the outer and inner mappings, byte for byte.
func TestComposeMappingConsistency(t *testing.T) {
	rows, _ := part.RowBlocks(8, 8, 4)
	f := part.MustFile(0, rows)
	sub, _ := part.Cyclic1D(16, 2, 2)
	composed, err := ComposePattern(f, 2, sub)
	if err != nil {
		t.Fatal(err)
	}
	cf := part.MustFile(0, composed)
	outer := MustMapper(f, 2)
	// Find the refined elements in the composed pattern.
	for t2 := 0; t2 < sub.Len(); t2++ {
		name := f.Pattern.Element(2).Name + "/" + sub.Element(t2).Name
		idx := -1
		for e := 0; e < composed.Len(); e++ {
			if composed.Element(e).Name == name {
				idx = e
			}
		}
		if idx < 0 {
			t.Fatalf("refined element %q missing", name)
		}
		refined := MustMapper(cf, idx)
		subSet := sub.Element(t2).Set
		// Enumerate: the k-th byte of the refined element must be the
		// file offset whose outer-element offset is the k-th selected
		// offset of the sub-element (periodically).
		var k int64
		for rep := int64(0); rep < 2; rep++ {
			for _, o := range subSet.Offsets() {
				y := rep*sub.Size() + o
				x, err := outer.MapInv(y)
				if err != nil {
					t.Fatal(err)
				}
				got, err := refined.Map(x)
				if err != nil {
					t.Fatalf("refined element does not own %d (outer offset %d): %v", x, y, err)
				}
				if got != k {
					t.Fatalf("refined Map(%d) = %d, want %d", x, got, k)
				}
				k++
			}
		}
	}
}

// TestComposeValidation: misfitting sub-patterns are rejected.
func TestComposeValidation(t *testing.T) {
	rows, _ := part.RowBlocks(8, 8, 4)
	f := part.MustFile(0, rows)
	if _, err := ComposePattern(nil, 0, rows); err == nil {
		t.Error("nil file accepted")
	}
	if _, err := ComposePattern(f, 9, rows); err == nil {
		t.Error("out-of-range element accepted")
	}
	bad, _ := part.Block1D(7, 7) // size 7 does not divide 16
	if _, err := ComposePattern(f, 0, bad); err == nil {
		t.Error("non-dividing sub-pattern accepted")
	}
}

// TestPropertyComposeTiles: composing a random element with a random
// 1-D split always yields a valid pattern of the same total size.
func TestPropertyComposeTiles(t *testing.T) {
	rng := rand.New(rand.NewSource(200))
	for iter := 0; iter < 40; iter++ {
		var pat *part.Pattern
		var err error
		switch rng.Intn(3) {
		case 0:
			pat, err = part.RowBlocks(8, 8, 4)
		case 1:
			pat, err = part.ColBlocks(8, 8, 4)
		default:
			pat, err = part.SquareBlocks(8, 8, 2, 2)
		}
		if err != nil {
			t.Fatal(err)
		}
		f := part.MustFile(0, pat)
		elem := rng.Intn(pat.Len())
		size := pat.Element(elem).Set.Size()
		// A divisor split of the element.
		divisors := []int64{2, 4, 8}
		d := divisors[rng.Intn(len(divisors))]
		if size%d != 0 {
			continue
		}
		sub, err := part.Block1D(size, int(d))
		if err != nil {
			t.Fatal(err)
		}
		composed, err := ComposePattern(f, elem, sub)
		if err != nil {
			t.Fatalf("compose failed: %v", err)
		}
		if composed.Size() != pat.Size() {
			t.Fatalf("composed size %d != original %d", composed.Size(), pat.Size())
		}
	}
}

package core

import (
	"errors"
	"math/rand"
	"testing"

	"parafile/internal/falls"
	"parafile/internal/part"
)

// fig3File is the paper's Figure 3 file: displacement 2, subfiles
// (0,1,6,1), (2,3,6,1), (4,5,6,1).
func fig3File(t *testing.T) *part.File {
	t.Helper()
	p, err := part.NewPattern(
		part.Element{Name: "s0", Set: falls.Set{falls.MustLeaf(0, 1, 6, 1)}},
		part.Element{Name: "s1", Set: falls.Set{falls.MustLeaf(2, 3, 6, 1)}},
		part.Element{Name: "s2", Set: falls.Set{falls.MustLeaf(4, 5, 6, 1)}},
	)
	if err != nil {
		t.Fatal(err)
	}
	return part.MustFile(2, p)
}

// TestPaperMapExample reproduces §6's first worked example: for the
// partition element {(2,3,6,1)} with pattern size 6 (Figure 3), the
// byte at file offset 10 maps on subfile offset 2 and vice-versa.
func TestPaperMapExample(t *testing.T) {
	f := fig3File(t)
	m := MustMapper(f, 1)
	got, err := m.Map(10)
	if err != nil || got != 2 {
		t.Errorf("MAP_S(10) = %d, %v; want 2", got, err)
	}
	inv, err := m.MapInv(2)
	if err != nil || inv != 10 {
		t.Errorf("MAP⁻¹_S(2) = %d, %v; want 10", inv, err)
	}
}

// TestPaperMapFormula reproduces §6.1's closed form for element 0 of
// Figure 3: MAP_S(x) = ((x-2) div 6)*2 + (x-2) mod 6 for mapped x.
func TestPaperMapFormula(t *testing.T) {
	f := fig3File(t)
	m := MustMapper(f, 0)
	for _, x := range []int64{2, 3, 8, 9, 14, 15, 20, 21} {
		want := (x-2)/6*2 + (x-2)%6
		got, err := m.Map(x)
		if err != nil || got != want {
			t.Errorf("MAP_S(%d) = %d, %v; want %d", x, got, err, want)
		}
	}
}

// TestPaperNextPrevExample reproduces §6.1's snapping example: "the
// previous map of byte at file offset x=5 on partition element 0 is
// the byte at offset 1 and the next map is the byte at offset 2".
func TestPaperNextPrevExample(t *testing.T) {
	f := fig3File(t)
	m := MustMapper(f, 0)
	// Offset 5 belongs to subfile 1, so the direct map fails.
	if _, err := m.Map(5); err == nil {
		t.Error("MAP_S(5) should fail on element 0 (paper: 'the byte at file offset 5 doesn't map on partition element 0')")
	} else {
		var nm *NotMappedError
		if !errors.As(err, &nm) || nm.Offset != 5 {
			t.Errorf("MAP_S(5) error = %v, want NotMappedError{5}", err)
		}
	}
	next, err := m.MapNext(5)
	if err != nil || next != 2 {
		t.Errorf("next map of 5 = %d, %v; want 2", next, err)
	}
	prev, err := m.MapPrev(5)
	if err != nil || prev != 1 {
		t.Errorf("previous map of 5 = %d, %v; want 1", prev, err)
	}
}

// TestMapInverseIdentity verifies the paper's §6.2 identity
// MAP⁻¹_S(MAP_S(x)) == x and MAP_S(MAP⁻¹_S(y)) == y.
func TestMapInverseIdentity(t *testing.T) {
	f := fig3File(t)
	for e := 0; e < 3; e++ {
		m := MustMapper(f, e)
		for x := int64(2); x < 80; x++ {
			v, err := m.Map(x)
			if err != nil {
				continue
			}
			back, err := m.MapInv(v)
			if err != nil || back != x {
				t.Errorf("elem %d: MAP⁻¹(MAP(%d)) = %d, %v", e, x, back, err)
			}
		}
		for y := int64(0); y < 30; y++ {
			x, err := m.MapInv(y)
			if err != nil {
				t.Fatalf("elem %d: MapInv(%d): %v", e, y, err)
			}
			v, err := m.Map(x)
			if err != nil || v != y {
				t.Errorf("elem %d: MAP(MAP⁻¹(%d)) = %d, %v", e, y, v, err)
			}
		}
	}
}

// TestMapBetweenIdenticalPartitions: §6.2 — "given a physical
// partition into subfiles and a logical partition into views,
// described by the same parameters, each view maps exactly on a
// subfile": the composition is the identity.
func TestMapBetweenIdenticalPartitions(t *testing.T) {
	phys := fig3File(t)
	logi := fig3File(t)
	for e := 0; e < 3; e++ {
		v := MustMapper(logi, e)
		s := MustMapper(phys, e)
		for y := int64(0); y < 40; y++ {
			got, err := MapBetween(v, s, y)
			if err != nil || got != y {
				t.Errorf("elem %d: MapBetween(%d) = %d, %v; want identity", e, y, got, err)
			}
		}
	}
}

// TestMapBetweenDifferentPartitions maps between a row-block view and
// a column-block subfile of an 8×8 matrix and checks against the
// coordinate oracle.
func TestMapBetweenDifferentPartitions(t *testing.T) {
	const n = 8
	rows, err := part.RowBlocks(n, n, 4)
	if err != nil {
		t.Fatal(err)
	}
	cols, err := part.ColBlocks(n, n, 4)
	if err != nil {
		t.Fatal(err)
	}
	fv := part.MustFile(0, rows)
	fs := part.MustFile(0, cols)
	v := MustMapper(fv, 1) // rows 2..3
	s := MustMapper(fs, 0) // columns 0..1
	// View byte y corresponds to matrix position (2 + y/8, y%8); it
	// lands on subfile 0 iff its column is < 2, at subfile offset
	// row*2 + col.
	for y := int64(0); y < 16; y++ {
		r := 2 + y/n
		c := y % n
		got, err := MapBetween(v, s, y)
		if c < 2 {
			want := r*2 + c
			if err != nil || got != want {
				t.Errorf("MapBetween(%d) = %d, %v; want %d", y, got, err, want)
			}
		} else if err == nil {
			t.Errorf("MapBetween(%d) should fail (column %d not on subfile 0), got %d", y, c, got)
		}
	}
}

func TestMapperValidation(t *testing.T) {
	f := fig3File(t)
	if _, err := NewMapper(nil, 0); err == nil {
		t.Error("nil file accepted")
	}
	if _, err := NewMapper(f, -1); err == nil {
		t.Error("negative element accepted")
	}
	if _, err := NewMapper(f, 3); err == nil {
		t.Error("out-of-range element accepted")
	}
	m := MustMapper(f, 0)
	if _, err := m.Map(1); err == nil {
		t.Error("offset before displacement accepted by Map")
	}
	if _, err := m.MapNext(0); err == nil {
		t.Error("offset before displacement accepted by MapNext")
	}
	if _, err := m.MapInv(-1); err == nil {
		t.Error("negative element offset accepted by MapInv")
	}
}

// buildRandomFile produces a random multi-element partition for the
// property tests: a random 2-D distribution or an interleaved nested
// pattern.
func buildRandomFile(t *testing.T, rng *rand.Rand) *part.File {
	t.Helper()
	var pat *part.Pattern
	var err error
	switch rng.Intn(4) {
	case 0:
		pat, err = part.RowBlocks(8, 8, 4)
	case 1:
		pat, err = part.ColBlocks(8, 8, 4)
	case 2:
		pat, err = part.SquareBlocks(8, 8, 2, 2)
	default:
		pat, err = part.Cyclic1D(48, 3, 4)
	}
	if err != nil {
		t.Fatal(err)
	}
	return part.MustFile(rng.Int63n(5), pat)
}

// TestPropertyMapMatchesEnumeration: MAP_S agrees with the position of
// the offset in the element's enumerated byte sequence, across pattern
// repetitions; MAP⁻¹ agrees in reverse; MapNext/MapPrev snap to the
// enumeration neighbours.
func TestPropertyMapMatchesEnumeration(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	for iter := 0; iter < 20; iter++ {
		f := buildRandomFile(t, rng)
		ps := f.Pattern.Size()
		for e := 0; e < f.Pattern.Len(); e++ {
			m := MustMapper(f, e)
			set := f.Pattern.Element(e).Set
			offs := set.Offsets() // in-pattern coordinates, sorted
			pos := map[int64]int64{}
			for k, o := range offs {
				pos[o] = int64(k)
			}
			size := set.Size()
			for rep := int64(0); rep < 3; rep++ {
				for coord := int64(0); coord < ps; coord++ {
					x := f.Displacement + rep*ps + coord
					k, mapped := pos[coord]
					got, err := m.Map(x)
					if mapped {
						want := rep*size + k
						if err != nil || got != want {
							t.Fatalf("elem %d: Map(%d) = %d, %v; want %d", e, x, got, err, want)
						}
						inv, err := m.MapInv(want)
						if err != nil || inv != x {
							t.Fatalf("elem %d: MapInv(%d) = %d, %v; want %d", e, want, inv, err, x)
						}
						continue
					}
					if err == nil {
						t.Fatalf("elem %d: Map(%d) succeeded (=%d) for unmapped offset", e, x, got)
					}
					// Next = number of element bytes strictly before x.
					var before int64
					for _, o := range offs {
						if o < coord {
							before++
						}
					}
					next, err := m.MapNext(x)
					wantNext := rep*size + before
					if before == size {
						wantNext = (rep + 1) * size
					}
					if err != nil || next != wantNext {
						t.Fatalf("elem %d: MapNext(%d) = %d, %v; want %d", e, x, next, err, wantNext)
					}
					if wantNext > 0 {
						prev, err := m.MapPrev(x)
						if err != nil || prev != wantNext-1 {
							t.Fatalf("elem %d: MapPrev(%d) = %d, %v; want %d", e, x, prev, err, wantNext-1)
						}
					}
				}
			}
		}
	}
}

// TestPropertyMapMonotonic: MAP_S is strictly increasing over the
// mapped offsets of the file.
func TestPropertyMapMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for iter := 0; iter < 10; iter++ {
		f := buildRandomFile(t, rng)
		for e := 0; e < f.Pattern.Len(); e++ {
			m := MustMapper(f, e)
			last := int64(-1)
			for x := f.Displacement; x < f.Displacement+3*f.Pattern.Size(); x++ {
				v, err := m.Map(x)
				if err != nil {
					continue
				}
				if v != last+1 {
					t.Fatalf("elem %d: Map(%d) = %d, expected consecutive %d", e, x, v, last+1)
				}
				last = v
			}
		}
	}
}

// Package core implements the paper's mapping functions (§6): MAP_S
// from a file offset to the offset inside one partition element S,
// its inverse MAP⁻¹_S, the next/previous-byte variants, and the
// composition MAP_S ∘ MAP⁻¹_V that maps between two elements of two
// different partitions of the same file.
//
// A Mapper is built once per partition element and caches the
// cumulative-size tables the recursive MAP-AUX lookups need, so that a
// single mapping costs O(depth · log members).
package core

import (
	"fmt"
	"sort"

	"parafile/internal/falls"
	"parafile/internal/part"
)

// ErrNotMapped is wrapped by errors reporting that a file offset does
// not belong to the partition element (it falls in another element's
// bytes). Use MapNext/MapPrev for snapping semantics.
type NotMappedError struct {
	Offset int64
}

func (e *NotMappedError) Error() string {
	return fmt.Sprintf("core: offset %d does not map on this partition element", e.Offset)
}

// Mapper maps between the linear space of a file and the linear space
// of one partition element (subfile or view).
type Mapper struct {
	file *part.File
	elem int
	set  setIndex
}

// NewMapper builds the mapping functions for element elem of the
// file's partition.
func NewMapper(f *part.File, elem int) (*Mapper, error) {
	if f == nil {
		return nil, fmt.Errorf("core: nil file")
	}
	if elem < 0 || elem >= f.Pattern.Len() {
		return nil, fmt.Errorf("core: element %d out of range [0,%d)", elem, f.Pattern.Len())
	}
	set := f.Pattern.Element(elem).Set
	if len(set) == 0 {
		return nil, fmt.Errorf("core: element %d has an empty set", elem)
	}
	return &Mapper{file: f, elem: elem, set: indexSet(set)}, nil
}

// MustMapper is NewMapper for statically valid inputs.
func MustMapper(f *part.File, elem int) *Mapper {
	m, err := NewMapper(f, elem)
	if err != nil {
		panic(err)
	}
	return m
}

// Element returns the element index this mapper serves.
func (m *Mapper) Element() int { return m.elem }

// File returns the file this mapper serves.
func (m *Mapper) File() *part.File { return m.file }

// ElementSize returns the bytes the element owns per pattern
// repetition.
func (m *Mapper) ElementSize() int64 { return m.set.size }

// setIndex is a Set plus cumulative sizes for MAP-AUX lookups.
type setIndex struct {
	members []memberIndex
	lefts   []int64 // members[i].n.L, for binary search
	cum     []int64 // bytes of members before i
	size    int64
}

type memberIndex struct {
	n     *falls.Nested
	inner *setIndex // nil for leaves
	// size of one block's mapped bytes: inner.size, or BlockLen for
	// leaves.
	blockBytes int64
}

func indexSet(s falls.Set) setIndex {
	idx := setIndex{
		members: make([]memberIndex, len(s)),
		lefts:   make([]int64, len(s)),
		cum:     make([]int64, len(s)),
	}
	var total int64
	for i, n := range s {
		mi := memberIndex{n: n, blockBytes: n.BlockLen()}
		if len(n.Inner) > 0 {
			inner := indexSet(n.Inner)
			mi.inner = &inner
			mi.blockBytes = inner.size
		}
		idx.members[i] = mi
		idx.lefts[i] = n.L
		idx.cum[i] = total
		total += n.Size()
	}
	idx.size = total
	return idx
}

// Map computes MAP_S(x): the offset within the partition element of
// absolute file offset x. It fails with *NotMappedError when x
// belongs to a different element, and with a range error when x
// precedes the file displacement.
func (m *Mapper) Map(x int64) (int64, error) {
	rep, coord, err := m.file.PatternCoord(x)
	if err != nil {
		return 0, err
	}
	v, ok := m.set.mapAux(coord)
	if !ok {
		return 0, &NotMappedError{Offset: x}
	}
	return rep*m.set.size + v, nil
}

// mapAux is MAP-AUX_S: map in-pattern coordinate x onto the element's
// linear space. ok is false when x is not covered by the set.
func (si *setIndex) mapAux(x int64) (int64, bool) {
	// Last member with L <= x.
	j := sort.Search(len(si.lefts), func(i int) bool { return si.lefts[i] > x }) - 1
	if j < 0 {
		return 0, false
	}
	mi := si.members[j]
	v, ok := mi.mapAuxFALLS(x - mi.n.L)
	if !ok {
		return 0, false
	}
	return si.cum[j] + v, true
}

// mapAuxFALLS is MAP-AUX_f: map offset x (relative to the family's
// left index) onto the bytes described by the nested FALLS.
func (mi memberIndex) mapAuxFALLS(x int64) (int64, bool) {
	n := mi.n
	i := x / n.S
	rem := x % n.S
	if i >= n.N || rem > n.R-n.L {
		return 0, false // beyond the family or in an inter-segment gap
	}
	if mi.inner == nil {
		return i*mi.blockBytes + rem, true
	}
	v, ok := mi.inner.mapAux(rem)
	if !ok {
		return 0, false
	}
	return i*mi.blockBytes + v, true
}

// MapInv computes MAP⁻¹_S(y): the absolute file offset of byte y of
// the partition element.
func (m *Mapper) MapInv(y int64) (int64, error) {
	if y < 0 {
		return 0, fmt.Errorf("core: negative element offset %d", y)
	}
	rep := y / m.set.size
	rem := y % m.set.size
	coord := m.set.mapAuxInv(rem)
	return m.file.Displacement + rep*m.file.Pattern.Size() + coord, nil
}

// mapAuxInv is the inverse of mapAux: element byte y (0 <= y < size)
// to in-pattern coordinate.
func (si *setIndex) mapAuxInv(y int64) int64 {
	// Last member whose cumulative start is <= y.
	j := sort.Search(len(si.cum), func(i int) bool { return si.cum[i] > y }) - 1
	mi := si.members[j]
	rem := y - si.cum[j]
	i := rem / mi.blockBytes
	off := rem % mi.blockBytes
	if mi.inner == nil {
		return mi.n.L + i*mi.n.S + off
	}
	return mi.n.L + i*mi.n.S + mi.inner.mapAuxInv(off)
}

// MapNext maps x when covered, or else the next file byte after x that
// the element covers (the paper's "next byte mapping"). It fails only
// when x precedes the displacement.
func (m *Mapper) MapNext(x int64) (int64, error) {
	rep, coord, err := m.file.PatternCoord(x)
	if err != nil {
		return 0, err
	}
	v, ok := m.set.mapNextAux(coord)
	if !ok {
		// Nothing left in this repetition: first byte of the next one.
		rep++
		v = 0
	}
	return rep*m.set.size + v, nil
}

// mapNextAux maps coordinate x or the next covered coordinate within
// the same pattern repetition. ok is false when no covered byte
// remains in the repetition.
func (si *setIndex) mapNextAux(x int64) (int64, bool) {
	j := sort.Search(len(si.lefts), func(i int) bool { return si.lefts[i] > x }) - 1
	if j < 0 {
		return 0, true // before the first member: next byte is element byte 0
	}
	mi := si.members[j]
	v, ok := mi.mapNextAuxFALLS(x - mi.n.L)
	if !ok {
		// Past member j entirely: first byte of member j+1, if any.
		if j+1 < len(si.members) {
			return si.cum[j+1], true
		}
		return 0, false
	}
	return si.cum[j] + v, true
}

func (mi memberIndex) mapNextAuxFALLS(x int64) (int64, bool) {
	n := mi.n
	i := x / n.S
	rem := x % n.S
	if i >= n.N {
		return 0, false
	}
	if rem > n.R-n.L {
		// In the gap after segment i: snap to segment i+1.
		if i+1 >= n.N {
			return 0, false
		}
		i++
		rem = 0
	}
	if mi.inner == nil {
		return i*mi.blockBytes + rem, true
	}
	v, ok := mi.inner.mapNextAux(rem)
	if !ok {
		// Past the inner pattern of this block: next block.
		if i+1 >= n.N {
			return 0, false
		}
		return (i + 1) * mi.blockBytes, true
	}
	return i*mi.blockBytes + v, true
}

// MapPrev maps x when covered, or else the last file byte before x
// that the element covers (the paper's "previous byte mapping"). It
// fails when no covered byte precedes x.
func (m *Mapper) MapPrev(x int64) (int64, error) {
	next, err := m.MapNext(x)
	if err != nil {
		return 0, err
	}
	// When x itself is mapped, MapNext(x) == Map(x); otherwise the
	// previous covered byte is exactly one element byte before the
	// next covered byte.
	if v, err := m.Map(x); err == nil {
		return v, nil
	}
	if next == 0 {
		return 0, fmt.Errorf("core: no mapped byte precedes offset %d", x)
	}
	return next - 1, nil
}

// MapBetween maps offset y of element V (of file fv) onto element S
// (of file fs), both partitions of the same underlying file:
// MAP_S(MAP⁻¹_V(y)) (§6.2). It fails when the file byte is not owned
// by S.
func MapBetween(from, to *Mapper, y int64) (int64, error) {
	x, err := from.MapInv(y)
	if err != nil {
		return 0, err
	}
	return to.Map(x)
}

// MapBetweenNext is MapBetween with next-byte snapping on the target
// element.
func MapBetweenNext(from, to *Mapper, y int64) (int64, error) {
	x, err := from.MapInv(y)
	if err != nil {
		return 0, err
	}
	return to.MapNext(x)
}

// MapBetweenPrev is MapBetween with previous-byte snapping on the
// target element.
func MapBetweenPrev(from, to *Mapper, y int64) (int64, error) {
	x, err := from.MapInv(y)
	if err != nil {
		return 0, err
	}
	return to.MapPrev(x)
}

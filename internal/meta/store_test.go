package meta

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"parafile/internal/rpc"
)

func testFile(name string, epoch uint64, nodes ...string) *rpc.MetaFile {
	assign := make([]int, len(nodes))
	for i := range assign {
		assign[i] = i
	}
	return &rpc.MetaFile{
		Name:        name,
		StripeBytes: 4096,
		Replication: 1,
		Epoch:       epoch,
		StoreName:   name,
		Nodes:       nodes,
		Assign:      assign,
	}
}

func openTestStore(t *testing.T, dir string) *Store {
	t.Helper()
	st, err := OpenStore(dir, StoreConfig{})
	if err != nil {
		t.Fatalf("OpenStore: %v", err)
	}
	t.Cleanup(func() { st.Close() })
	return st
}

func TestStoreCRUDPersists(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	st := openTestStore(t, dir)

	for _, addr := range []string{"n1:1", "n2:1", "n3:1"} {
		if _, err := st.SetNode(ctx, addr, rpc.NodeActive); err != nil {
			t.Fatalf("SetNode(%s): %v", addr, err)
		}
	}
	if err := st.Create(ctx, testFile("a", 1, "n1:1", "n2:1")); err != nil {
		t.Fatalf("Create a: %v", err)
	}
	if err := st.Create(ctx, testFile("b", 1, "n2:1", "n3:1")); err != nil {
		t.Fatalf("Create b: %v", err)
	}
	if err := st.Create(ctx, testFile("a", 1, "n1:1")); !errors.Is(err, ErrExists) {
		t.Fatalf("duplicate create: got %v, want ErrExists", err)
	}
	if _, err := st.Extend(ctx, "a", 9000); err != nil {
		t.Fatalf("Extend: %v", err)
	}
	// Extend never shrinks.
	if f, err := st.Extend(ctx, "a", 100); err != nil || f.Length != 9000 {
		t.Fatalf("Extend shrink: got %v len %d, want 9000", err, f.Length)
	}
	if err := st.Remove(ctx, "b"); err != nil {
		t.Fatalf("Remove b: %v", err)
	}
	if err := st.Remove(ctx, "never-existed"); err != nil {
		t.Fatalf("Remove absent: %v", err)
	}
	if _, err := st.SetNode(ctx, "n3:1", rpc.NodeDraining); err != nil {
		t.Fatalf("drain n3: %v", err)
	}
	if err := st.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	st2 := openTestStore(t, dir)
	files := st2.List()
	if len(files) != 1 || files[0].Name != "a" || files[0].Length != 9000 {
		t.Fatalf("after restart List = %+v, want just a with length 9000", files)
	}
	if _, err := st2.Get("b"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get removed file: got %v, want ErrNotFound", err)
	}
	if got := st2.ActiveNodes(); len(got) != 2 || got[0] != "n1:1" || got[1] != "n2:1" {
		t.Fatalf("ActiveNodes after restart = %v, want [n1:1 n2:1]", got)
	}
	nodes := st2.Nodes()
	if len(nodes) != 3 || nodes[2].Addr != "n3:1" || nodes[2].State != rpc.NodeDraining {
		t.Fatalf("Nodes after restart = %v, want n3 draining last", nodes)
	}
}

func TestStoreCommitCAS(t *testing.T) {
	ctx := context.Background()
	st := openTestStore(t, t.TempDir())
	if err := st.Create(ctx, testFile("f", 3, "n1:1", "n2:1")); err != nil {
		t.Fatal(err)
	}
	got, err := st.Commit(ctx, &rpc.MetaCommitReq{
		Name: "f", OldEpoch: 3, StoreName: "f@4", Nodes: []string{"n2:1", "n3:1"}, Assign: []int{0, 1},
	})
	if err != nil {
		t.Fatalf("Commit: %v", err)
	}
	if got.Epoch != 4 || got.StoreName != "f@4" || len(got.Nodes) != 2 || got.Nodes[0] != "n2:1" {
		t.Fatalf("committed record = %+v", got)
	}
	// Losing CAS: the epoch moved to 4, a commit naming 3 must fail.
	_, err = st.Commit(ctx, &rpc.MetaCommitReq{
		Name: "f", OldEpoch: 3, StoreName: "f@4b", Nodes: []string{"n1:1"}, Assign: []int{0},
	})
	if !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("stale commit: got %v, want ErrStaleEpoch", err)
	}
	if _, err := st.Commit(ctx, &rpc.MetaCommitReq{Name: "ghost", OldEpoch: 1}); !errors.Is(err, ErrNotFound) {
		t.Fatalf("commit of absent file: got %v, want ErrNotFound", err)
	}
}

func TestStoreDecommissionValidation(t *testing.T) {
	ctx := context.Background()
	st := openTestStore(t, t.TempDir())
	if _, err := st.SetNode(ctx, "n1:1", rpc.NodeActive); err != nil {
		t.Fatal(err)
	}
	// Active → removed without draining is rejected.
	if _, err := st.SetNode(ctx, "n1:1", rpc.NodeRemoved); !errors.Is(err, ErrNodeBusy) {
		t.Fatalf("remove active node: got %v, want ErrNodeBusy", err)
	}
	if _, err := st.SetNode(ctx, "n1:1", rpc.NodeDraining); err != nil {
		t.Fatal(err)
	}
	// Draining but still referenced by a file is rejected.
	if err := st.Create(ctx, testFile("f", 1, "n1:1")); err != nil {
		t.Fatal(err)
	}
	if _, err := st.SetNode(ctx, "n1:1", rpc.NodeRemoved); !errors.Is(err, ErrNodeBusy) {
		t.Fatalf("remove referenced node: got %v, want ErrNodeBusy", err)
	}
	if err := st.Remove(ctx, "f"); err != nil {
		t.Fatal(err)
	}
	if _, err := st.SetNode(ctx, "n1:1", rpc.NodeRemoved); err != nil {
		t.Fatalf("remove drained empty node: %v", err)
	}
	if got := st.ActiveNodes(); len(got) != 0 {
		t.Fatalf("ActiveNodes after removal = %v", got)
	}
	if _, err := st.SetNode(ctx, "", rpc.NodeActive); err == nil {
		t.Fatal("empty address accepted")
	}
	if _, err := st.SetNode(ctx, "n2:1", 99); err == nil {
		t.Fatal("unknown state accepted")
	}
}

// TestStoreCrashMidRecord truncates the log mid-record — the
// crash-during-append window — and asserts the replay keeps every
// complete record and loses only the torn one.
func TestStoreCrashMidRecord(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	st := openTestStore(t, dir)
	if err := st.Create(ctx, testFile("kept", 1, "n1:1")); err != nil {
		t.Fatal(err)
	}
	logPath := filepath.Join(dir, "meta.log")
	fi, err := os.Stat(logPath)
	if err != nil {
		t.Fatal(err)
	}
	keptSize := fi.Size()
	if err := st.Create(ctx, testFile("torn", 1, "n1:1")); err != nil {
		t.Fatal(err)
	}
	fi, err = os.Stat(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the second record: cut the log half-way into its bytes.
	if err := os.Truncate(logPath, keptSize+(fi.Size()-keptSize)/2); err != nil {
		t.Fatal(err)
	}

	st2 := openTestStore(t, dir)
	if _, err := st2.Get("kept"); err != nil {
		t.Fatalf("complete record lost after torn-tail replay: %v", err)
	}
	if _, err := st2.Get("torn"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("torn record resurrected: %v", err)
	}
	// The truncation must leave the log on a record boundary: the next
	// append and restart round-trip cleanly.
	if err := st2.Create(ctx, testFile("after", 1, "n1:1")); err != nil {
		t.Fatalf("append after torn-tail recovery: %v", err)
	}
	if err := st2.Close(); err != nil {
		t.Fatal(err)
	}
	st3 := openTestStore(t, dir)
	for _, want := range []string{"kept", "after"} {
		if _, err := st3.Get(want); err != nil {
			t.Fatalf("Get(%s) after second restart: %v", want, err)
		}
	}
}

// TestStoreCrashMidSnapshot simulates dying while writing the snapshot
// tmp file: a leftover (even corrupt) tmp must be ignored, with the
// namespace replayed from the previous snapshot + log, and no file
// lost.
func TestStoreCrashMidSnapshot(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	st := openTestStore(t, dir)
	if err := st.Create(ctx, testFile("a", 1, "n1:1")); err != nil {
		t.Fatal(err)
	}
	if err := st.Snapshot(ctx); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if fi, err := os.Stat(filepath.Join(dir, "meta.log")); err != nil || fi.Size() != 0 {
		t.Fatalf("log not truncated after snapshot: %v size %d", err, fi.Size())
	}
	if err := st.Create(ctx, testFile("b", 1, "n1:1")); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	// A torn snapshot tmp — garbage, no magic, half a record — as a
	// crash mid-write would leave it.
	if err := os.WriteFile(filepath.Join(dir, "meta.snap.tmp"), []byte("pfmeta01\x7fgarbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	st2 := openTestStore(t, dir)
	for _, want := range []string{"a", "b"} {
		if _, err := st2.Get(want); err != nil {
			t.Fatalf("Get(%s) after mid-snapshot crash: %v", want, err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "meta.snap.tmp")); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("leftover snapshot tmp not cleaned: %v", err)
	}
}

// TestStoreSnapshotCompaction drives enough mutations past a tiny
// threshold to trigger automatic compaction and verifies the state
// survives a restart from snapshot + fresh log.
func TestStoreSnapshotCompaction(t *testing.T) {
	dir := t.TempDir()
	ctx := context.Background()
	st, err := OpenStore(dir, StoreConfig{SnapshotEvery: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if _, err := st.SetNode(ctx, "n1:1", rpc.NodeActive); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 32; i++ {
		if _, err := st.Extend(ctx, "f", int64(i)); !errors.Is(err, ErrNotFound) && err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			if err := st.Create(ctx, testFile("f", 1, "n1:1")); err != nil {
				t.Fatal(err)
			}
		}
	}
	for i := int64(1); i <= 32; i++ {
		if _, err := st.Extend(ctx, "f", i*100); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := os.Stat(filepath.Join(dir, "meta.snap")); err != nil {
		t.Fatalf("no snapshot after %d mutations past a 256-byte threshold: %v", 32, err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st2 := openTestStore(t, dir)
	f, err := st2.Get("f")
	if err != nil || f.Length != 3200 {
		t.Fatalf("after compacted restart: %+v, %v (want length 3200)", f, err)
	}
	if got := st2.ActiveNodes(); len(got) != 1 || got[0] != "n1:1" {
		t.Fatalf("ActiveNodes after compacted restart = %v", got)
	}
}

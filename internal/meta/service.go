package meta

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"parafile/internal/fault"
	"parafile/internal/obs"
	"parafile/internal/rpc"
)

// service.go is the parafilemd daemon: a small TCP loop speaking the
// storage wire's framing (length-prefixed frames, hello negotiation,
// MsgError) but answering the namespace/placement messages instead of
// the data-path ones. It caps the negotiated protocol at v2 — the
// metadata exchanges are tiny unary round-trips, so the v3 mux buys
// nothing; a default (v3-wanting) client falls back to classic pooled
// connections on its own.

// DefaultStripeBytes is the striping unit a create without an explicit
// stripe gets: subfile s holds bytes [s*W, (s+1)*W) of each period.
const DefaultStripeBytes = 64 << 10

// ServiceConfig configures a metadata service.
type ServiceConfig struct {
	// Store is the durable namespace state (required).
	Store *Store
	// MaxFrame bounds accepted frame bodies (rpc.DefaultMaxFrame if 0).
	MaxFrame int64
	// Metrics receives the request series; nil records nothing.
	Metrics *obs.Registry
	// Log receives structured events; nil logs nothing.
	Log *slog.Logger
	// Fault, when non-nil, interposes on accepted connections
	// (fault.OpDial, node 0) for robustness tests.
	Fault *fault.Injector
	// Group, when non-nil, is the replication group this node belongs
	// to. Namespace traffic is then gated on the leader lease (others
	// answer ErrCodeNotLeader with a redirect hint) and the peer
	// replication messages are routed into the group. Nil runs the
	// pre-replication single-node behavior unchanged.
	Group *Group
}

// Service serves the metadata protocol on accepted connections.
type Service struct {
	cfg    ServiceConfig
	maxVer byte

	mu       sync.Mutex
	conns    map[net.Conn]struct{}
	ln       net.Listener
	draining atomic.Bool
	connWG   sync.WaitGroup

	metRequests map[byte]*obs.Counter
	metErrors   *obs.Counter
}

// NewService builds a metadata service over the given store.
func NewService(cfg ServiceConfig) *Service {
	if cfg.MaxFrame == 0 {
		cfg.MaxFrame = rpc.DefaultMaxFrame
	}
	s := &Service{
		cfg:    cfg,
		maxVer: rpc.ProtoVersion2,
		conns:  make(map[net.Conn]struct{}),
	}
	if reg := cfg.Metrics; reg != nil {
		s.metRequests = make(map[byte]*obs.Counter)
		for _, t := range []byte{
			rpc.MsgHello, rpc.MsgPing,
			rpc.MsgMetaCreate, rpc.MsgMetaOpen, rpc.MsgMetaList, rpc.MsgMetaRemove,
			rpc.MsgMetaCommit, rpc.MsgMetaExtend, rpc.MsgMetaNodes, rpc.MsgMetaNode,
			rpc.MsgMetaVote, rpc.MsgMetaAppend, rpc.MsgMetaSnapInstall, rpc.MsgMetaStatus,
		} {
			s.metRequests[t] = reg.Counter(
				fmt.Sprintf("parafile_meta_requests_total{type=%q}", rpc.MsgName(t)))
		}
		s.metErrors = reg.Counter("parafile_meta_errors_total")
	}
	return s
}

// Serve accepts connections until the listener closes.
func (s *Service) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.ln = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			if s.draining.Load() {
				return nil
			}
			return err
		}
		s.mu.Lock()
		if s.draining.Load() {
			s.mu.Unlock()
			conn.Close()
			return nil
		}
		s.conns[conn] = struct{}{}
		s.connWG.Add(1)
		s.mu.Unlock()
		go s.serveConn(conn)
	}
}

// Shutdown stops accepting, closes every connection and waits for the
// handlers (bounded by ctx).
func (s *Service) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	s.mu.Lock()
	if s.ln != nil {
		s.ln.Close()
	}
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() {
		s.connWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

func (s *Service) serveConn(conn net.Conn) {
	defer func() {
		conn.Close()
		s.mu.Lock()
		delete(s.conns, conn)
		s.mu.Unlock()
		s.connWG.Done()
	}()
	if inj := s.cfg.Fault; inj != nil {
		if err := inj.Fire(context.Background(), 0, fault.OpDial, ""); err != nil {
			return
		}
	}
	for {
		body, err := rpc.ReadFrame(conn, s.cfg.MaxFrame)
		if err != nil {
			return
		}
		reqVer := body[0]
		msgType, payload, err := rpc.ParseFrame(body)
		var resp []byte
		if err != nil {
			resp = rpc.AppendError(nil, rpc.ErrCodeBadRequest, err.Error())
		} else {
			if c := s.metRequests[msgType]; c != nil {
				c.Inc()
			}
			resp = s.route(msgType, payload)
		}
		respVer := reqVer
		if respVer > s.maxVer {
			respVer = s.maxVer
		}
		werr := rpc.WriteFrameV(conn, resp, respVer)
		rpc.ReleaseFrame(body)
		if werr != nil {
			return
		}
	}
}

func (s *Service) route(msgType byte, payload []byte) []byte {
	switch msgType {
	case rpc.MsgHello:
		return s.handleHello(payload)
	case rpc.MsgPing:
		if len(payload) != 0 {
			return s.errResp(rpc.ErrCodeBadRequest, "ping with payload")
		}
		return rpc.AppendOK(nil)
	case rpc.MsgMetaVote:
		return s.handleVote(payload)
	case rpc.MsgMetaAppend:
		return s.handleAppendEntries(payload)
	case rpc.MsgMetaSnapInstall:
		return s.handleSnapInstall(payload)
	case rpc.MsgMetaStatus:
		if len(payload) != 0 {
			return s.errResp(rpc.ErrCodeBadRequest, "status with payload")
		}
		return s.handleStatus()
	}
	// Everything else is namespace traffic: reads included, it is only
	// served while this node holds the leader lease, so a client can
	// never observe a stale namespace from a deposed or lagging node.
	if resp := s.notLeader(); resp != nil {
		return resp
	}
	switch msgType {
	case rpc.MsgMetaCreate:
		return s.handleCreate(payload)
	case rpc.MsgMetaOpen:
		return s.handleOpen(payload)
	case rpc.MsgMetaList:
		if len(payload) != 0 {
			return s.errResp(rpc.ErrCodeBadRequest, "list with payload")
		}
		return rpc.AppendMetaListResp(nil, s.cfg.Store.List())
	case rpc.MsgMetaRemove:
		return s.handleRemove(payload)
	case rpc.MsgMetaCommit:
		return s.handleCommit(payload)
	case rpc.MsgMetaExtend:
		return s.handleExtend(payload)
	case rpc.MsgMetaNodes:
		if len(payload) != 0 {
			return s.errResp(rpc.ErrCodeBadRequest, "nodes with payload")
		}
		return rpc.AppendMetaNodesResp(nil, s.cfg.Store.Nodes())
	case rpc.MsgMetaNode:
		return s.handleNode(payload)
	}
	return s.errResp(rpc.ErrCodeBadRequest, fmt.Sprintf("unknown message type %#x", msgType))
}

// notLeader answers non-nil when namespace traffic must be refused:
// this node is grouped and does not hold a live leader lease. The
// response carries the believed leader as a redirect hint and a small
// retry delay for the election window, when there is no leader at all.
func (s *Service) notLeader() []byte {
	g := s.cfg.Group
	if g == nil || g.IsLeader() {
		return nil
	}
	if s.metErrors != nil {
		s.metErrors.Inc()
	}
	hint := g.LeaderHint()
	retry := time.Duration(0)
	if hint == "" {
		retry = 50 * time.Millisecond
	}
	return rpc.AppendErrorLeader(nil, rpc.ErrCodeNotLeader,
		"not the metadata leader", retry, hint)
}

func (s *Service) handleVote(payload []byte) []byte {
	req, err := rpc.DecodeMetaVote(payload)
	if err != nil {
		return s.errResp(rpc.ErrCodeBadRequest, err.Error())
	}
	if s.cfg.Group == nil {
		return s.errResp(rpc.ErrCodeBadRequest, "node is not part of a replication group")
	}
	return rpc.AppendMetaVoteResp(nil, s.cfg.Group.HandleVote(req))
}

func (s *Service) handleAppendEntries(payload []byte) []byte {
	req, err := rpc.DecodeMetaAppend(payload)
	if err != nil {
		return s.errResp(rpc.ErrCodeBadRequest, err.Error())
	}
	if s.cfg.Group == nil {
		return s.errResp(rpc.ErrCodeBadRequest, "node is not part of a replication group")
	}
	return rpc.AppendMetaAppendResp(nil, s.cfg.Group.HandleAppend(context.Background(), req))
}

func (s *Service) handleSnapInstall(payload []byte) []byte {
	req, err := rpc.DecodeMetaSnapInstall(payload)
	if err != nil {
		return s.errResp(rpc.ErrCodeBadRequest, err.Error())
	}
	if s.cfg.Group == nil {
		return s.errResp(rpc.ErrCodeBadRequest, "node is not part of a replication group")
	}
	return rpc.AppendMetaAppendResp(nil, s.cfg.Group.HandleSnapInstall(context.Background(), req))
}

// handleStatus answers on any node, leader or not — it is how clients
// and operators discover the leader in the first place.
func (s *Service) handleStatus() []byte {
	if g := s.cfg.Group; g != nil {
		return rpc.AppendMetaStatusResp(nil, g.Status())
	}
	idx, trm := s.cfg.Store.LastEntry()
	return rpc.AppendMetaStatusResp(nil, &rpc.MetaStatusInfo{
		Term:      s.cfg.Store.Term(),
		Role:      rpc.RoleStandalone,
		LastIndex: idx,
		LastTerm:  trm,
		Peers:     1,
	})
}

// handleHello negotiates min(client, v2) and grants FeaturePlacement:
// this daemon IS the placement authority.
func (s *Service) handleHello(payload []byte) []byte {
	want, features, err := rpc.DecodeHelloFeatures(payload)
	if err != nil {
		return s.errResp(rpc.ErrCodeBadRequest, err.Error())
	}
	agreed := want
	if agreed > s.maxVer {
		agreed = s.maxVer
	}
	granted := rpc.FeaturePlacement & features
	return rpc.AppendHelloRespFeatures(nil, agreed, granted)
}

// handleCreate computes the initial placement over the active nodes:
// one subfile per active node, identity assign, epoch 1.
func (s *Service) handleCreate(payload []byte) []byte {
	req, err := rpc.DecodeMetaCreate(payload)
	if err != nil {
		return s.errResp(rpc.ErrCodeBadRequest, err.Error())
	}
	if req.Name == "" {
		return s.errResp(rpc.ErrCodeBadRequest, "empty file name")
	}
	stripe := req.StripeBytes
	if stripe == 0 {
		stripe = DefaultStripeBytes
	}
	if stripe < 1 {
		return s.errResp(rpc.ErrCodeBadRequest, fmt.Sprintf("bad stripe %d", stripe))
	}
	repl := req.Replication
	if repl == 0 {
		repl = 1
	}
	active := s.cfg.Store.ActiveNodes()
	if len(active) == 0 {
		return s.errResp(rpc.ErrCodeIO, "no active data nodes registered")
	}
	if repl < 1 || repl > len(active) {
		return s.errResp(rpc.ErrCodeBadRequest,
			fmt.Sprintf("replication %d outside [1,%d active nodes]", repl, len(active)))
	}
	assign := make([]int, len(active))
	for i := range assign {
		assign[i] = i
	}
	f := &rpc.MetaFile{
		Name:        req.Name,
		StripeBytes: stripe,
		Replication: repl,
		Epoch:       1,
		StoreName:   req.Name,
		Nodes:       active,
		Assign:      assign,
	}
	if err := s.cfg.Store.Create(context.Background(), f); err != nil {
		return s.storeErr(err)
	}
	s.logf("meta create", "file", f.Name, "nodes", len(f.Nodes), "replication", repl)
	return rpc.AppendMetaFileResp(nil, f)
}

func (s *Service) handleOpen(payload []byte) []byte {
	name, err := rpc.DecodeMetaName(payload)
	if err != nil {
		return s.errResp(rpc.ErrCodeBadRequest, err.Error())
	}
	f, err := s.cfg.Store.Get(name)
	if err != nil {
		return s.storeErr(err)
	}
	return rpc.AppendMetaFileResp(nil, f)
}

func (s *Service) handleRemove(payload []byte) []byte {
	name, err := rpc.DecodeMetaName(payload)
	if err != nil {
		return s.errResp(rpc.ErrCodeBadRequest, err.Error())
	}
	if err := s.cfg.Store.Remove(context.Background(), name); err != nil {
		return s.storeErr(err)
	}
	return rpc.AppendOK(nil)
}

func (s *Service) handleCommit(payload []byte) []byte {
	req, err := rpc.DecodeMetaCommit(payload)
	if err != nil {
		return s.errResp(rpc.ErrCodeBadRequest, err.Error())
	}
	f, err := s.cfg.Store.Commit(context.Background(), req)
	if err != nil {
		return s.storeErr(err)
	}
	s.logf("meta commit", "file", f.Name, "epoch", f.Epoch, "store", f.StoreName, "nodes", len(f.Nodes))
	return rpc.AppendMetaFileResp(nil, f)
}

func (s *Service) handleExtend(payload []byte) []byte {
	req, err := rpc.DecodeMetaExtend(payload)
	if err != nil {
		return s.errResp(rpc.ErrCodeBadRequest, err.Error())
	}
	if req.Length < 0 {
		return s.errResp(rpc.ErrCodeBadRequest, fmt.Sprintf("negative length %d", req.Length))
	}
	f, err := s.cfg.Store.Extend(context.Background(), req.Name, req.Length)
	if err != nil {
		return s.storeErr(err)
	}
	return rpc.AppendMetaFileResp(nil, f)
}

func (s *Service) handleNode(payload []byte) []byte {
	req, err := rpc.DecodeMetaNodeReq(payload)
	if err != nil {
		return s.errResp(rpc.ErrCodeBadRequest, err.Error())
	}
	nodes, err := s.cfg.Store.SetNode(context.Background(), req.Addr, req.State)
	if err != nil {
		return s.storeErr(err)
	}
	s.logf("meta node", "addr", req.Addr, "state", rpc.NodeStateName(req.State))
	return rpc.AppendMetaNodesResp(nil, nodes)
}

// storeErr maps a store error onto the wire's error codes.
func (s *Service) storeErr(err error) []byte {
	switch {
	case errors.Is(err, ErrNotFound):
		return s.errResp(rpc.ErrCodeUnknownFile, err.Error())
	case errors.Is(err, ErrStaleEpoch):
		return s.errResp(rpc.ErrCodeStalePlacement, err.Error())
	case errors.Is(err, ErrExists), errors.Is(err, ErrNodeBusy):
		return s.errResp(rpc.ErrCodeBadRequest, err.Error())
	}
	return s.errResp(rpc.ErrCodeIO, err.Error())
}

func (s *Service) errResp(code uint64, msg string) []byte {
	if s.metErrors != nil {
		s.metErrors.Inc()
	}
	return rpc.AppendError(nil, code, msg)
}

func (s *Service) logf(msg string, args ...any) {
	if s.cfg.Log != nil {
		s.cfg.Log.Info(msg, args...)
	}
}

package meta

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"parafile/internal/clusterfile"
	"parafile/internal/hpf"
	"parafile/internal/obs"
	"parafile/internal/part"
	"parafile/internal/rpc"
)

// fs.go is the client side of the metadata service: open files by
// name, cache the placement map, and run byte-range reads and writes
// through the clusterfile collective protocol against the placement's
// data daemons. When a daemon answers ErrStalePlacement — the file was
// rebalanced under the client — the client refetches the map from the
// service, retires pooled connections to nodes that left the
// placement, reopens the new generation and retries transparently.

// Options configures Dial.
type Options struct {
	// Client is the per-daemon client template (Addr/Placement are set
	// by the FS). The Placement feature is always offered.
	Client rpc.ClientConfig
	// OpTimeout bounds every collective data operation (zero: none).
	OpTimeout time.Duration
	// MaxRetries bounds the stale-placement refetch-and-retry loop of
	// one read/write (default 8).
	MaxRetries int
	// RetryBackoff is the wait between stale retries (default 25ms) —
	// a fence holds from the rebalance's first gather to its commit,
	// and writers issued in that window spin against it.
	RetryBackoff time.Duration
	// RebalanceWorkers bounds concurrent per-file moves inside
	// RebalanceAll (default 4).
	RebalanceWorkers int
	// Metrics receives the FS series (stale retries, rebalances) plus
	// the client/cluster series; nil records nothing.
	Metrics *obs.Registry
	// Tracer, when non-nil, makes every collective operation (and every
	// rebalance) a distributed trace.
	Tracer *obs.Tracer
	// Log receives structured events; nil logs nothing.
	Log *slog.Logger
}

// FS is a connection to a metadata service (or a replicated group of
// them).
type FS struct {
	md   *mdClient
	opts Options

	metStale      *obs.Counter
	metRebalances *obs.Counter
	metRebalanced *obs.Counter
	metGC         *obs.Counter
}

// Dial connects to the metadata service. addr may be a single address
// or a comma-separated endpoint list for a replicated group; the FS
// discovers the leaseholder by following NotLeader redirects and fails
// over through elections transparently.
func Dial(addr string, opts Options) *FS {
	if opts.MaxRetries == 0 {
		opts.MaxRetries = 8
	}
	if opts.RetryBackoff == 0 {
		opts.RetryBackoff = 25 * time.Millisecond
	}
	cfg := opts.Client
	cfg.Metrics = opts.Metrics
	fs := &FS{md: newMDClient(splitEndpoints(addr), cfg, opts.Metrics), opts: opts}
	if reg := opts.Metrics; reg != nil {
		fs.metStale = reg.Counter("parafile_meta_stale_retries_total")
		fs.metRebalances = reg.Counter("parafile_rebalance_total")
		fs.metRebalanced = reg.Counter("parafile_rebalance_bytes_moved_total")
		fs.metGC = reg.Counter("parafile_meta_gc_total")
	}
	return fs
}

// Close releases the metadata connection pool.
func (fs *FS) Close() error { return fs.md.Close() }

// List returns the namespace.
func (fs *FS) List(ctx context.Context) ([]*rpc.MetaFile, error) {
	return fs.md.MetaList(ctx)
}

// Remove deletes a namespace entry (the daemons' stores are left to
// garbage collection; the name is immediately reusable).
func (fs *FS) Remove(ctx context.Context, name string) error {
	return fs.md.MetaRemove(ctx, name)
}

// Nodes returns the membership table.
func (fs *FS) Nodes(ctx context.Context) ([]rpc.MetaNode, error) {
	return fs.md.MetaNodes(ctx)
}

// SetNode registers a node or changes its membership state.
func (fs *FS) SetNode(ctx context.Context, addr string, state byte) ([]rpc.MetaNode, error) {
	return fs.md.MetaNodeSet(ctx, addr, state)
}

// Stat returns the current metadata record of a file.
func (fs *FS) Stat(ctx context.Context, name string) (*rpc.MetaFile, error) {
	return fs.md.MetaOpen(ctx, name)
}

// Create registers a new file (stripe 0 takes the service default,
// replication 0 means 1) and opens it.
func (fs *FS) Create(ctx context.Context, name string, stripeBytes int64, replication int) (*File, error) {
	mf, err := fs.md.MetaCreate(ctx, &rpc.MetaCreateReq{
		Name: name, StripeBytes: stripeBytes, Replication: replication,
	})
	if err != nil {
		return nil, err
	}
	return fs.open(ctx, mf)
}

// Open opens an existing file by name.
func (fs *FS) Open(ctx context.Context, name string) (*File, error) {
	mf, err := fs.md.MetaOpen(ctx, name)
	if err != nil {
		return nil, err
	}
	return fs.open(ctx, mf)
}

func (fs *FS) open(ctx context.Context, mf *rpc.MetaFile) (*File, error) {
	tr, err := rpc.NewTransport(mf.Nodes, fs.transportOptions())
	if err != nil {
		return nil, err
	}
	f := &File{fs: fs, name: mf.Name, tr: tr}
	if err := f.bind(ctx, mf); err != nil {
		tr.Close()
		return nil, err
	}
	return f, nil
}

// transportOptions is the shared data-daemon transport template: the
// Placement feature offered (so epoch-stamped requests are checked,
// not silently accepted), reopen-without-truncate semantics (several
// clients and the rebalance driver share the stores), and tracing
// offered whenever the FS has a tracer so data ops — rebalance copies
// included — show up in the daemons' /debug/trace.
func (fs *FS) transportOptions() rpc.Options {
	client := fs.opts.Client
	client.Placement = true
	if fs.opts.Tracer != nil {
		client.Trace = true
	}
	return rpc.Options{
		Client:  client,
		Reopen:  true,
		Metrics: fs.opts.Metrics,
	}
}

// clusterConfig is the per-placement cluster template.
func (fs *FS) clusterConfig(nodes int, tr clusterfile.Transport) clusterfile.Config {
	cfg := clusterfile.DefaultConfig()
	cfg.ComputeNodes = 1
	cfg.IONodes = nodes
	cfg.Transport = tr
	cfg.OpTimeout = fs.opts.OpTimeout
	cfg.Metrics = fs.opts.Metrics
	cfg.Tracer = fs.opts.Tracer
	cfg.Log = fs.opts.Log
	return cfg
}

// stripePattern is the physical partition of a placement: S subfiles
// of W contiguous bytes each, tiling the file in S*W periods —
// 1-D BLOCK striping in the paper's file model.
func stripePattern(subfiles int, stripeBytes int64) (*part.File, error) {
	pat, err := hpf.Pattern(
		fmt.Sprintf("%d", int64(subfiles)*stripeBytes),
		fmt.Sprintf("BLOCK(%d)", subfiles), 1)
	if err != nil {
		return nil, err
	}
	return part.NewFile(0, pat)
}

// wholeView is the identity view over the same period: one element
// selecting every byte, so view offsets are file offsets.
func wholeView(subfiles int, stripeBytes int64) (*part.File, error) {
	pat, err := hpf.Pattern(fmt.Sprintf("%d", int64(subfiles)*stripeBytes), "*", 1)
	if err != nil {
		return nil, err
	}
	return part.NewFile(0, pat)
}

// placementRows expands (nodes, assign, replication) into explicit
// [replica][subfile] placement rows: replica r of subfile s on node
// index (assign[s]+r) mod len(nodes).
func placementRows(mf *rpc.MetaFile) [][]int {
	rows := make([][]int, mf.Replication)
	for r := range rows {
		row := make([]int, len(mf.Assign))
		for s, a := range mf.Assign {
			row[s] = (a + r) % len(mf.Nodes)
		}
		rows[r] = row
	}
	return rows
}

// File is an open metadata-managed file. Reads and writes address the
// file's logical byte space; striping, placement, replication and
// epoch stamping are resolved through the cached placement map.
type File struct {
	fs   *FS
	name string

	mu      sync.Mutex
	mf      *rpc.MetaFile
	tr      *rpc.Transport
	cluster *clusterfile.Cluster
	cf      *clusterfile.File
	view    *clusterfile.View
}

// bind (re)builds the cluster, file handles and identity view for the
// given placement map. The transport persists across binds — Update
// reconciles its per-daemon pools, retiring connections to nodes that
// left the placement.
func (f *File) bind(ctx context.Context, mf *rpc.MetaFile) error {
	if len(mf.Nodes) == 0 || len(mf.Assign) == 0 {
		return fmt.Errorf("meta: %q has an empty placement", mf.Name)
	}
	if mf.Replication < 1 || mf.Replication > len(mf.Nodes) {
		return fmt.Errorf("meta: %q replication %d over %d nodes", mf.Name, mf.Replication, len(mf.Nodes))
	}
	f.tr.Update(mf.Nodes)
	phys, err := stripePattern(len(mf.Assign), mf.StripeBytes)
	if err != nil {
		return err
	}
	lf, err := wholeView(len(mf.Assign), mf.StripeBytes)
	if err != nil {
		return err
	}
	cluster, err := clusterfile.New(f.fs.clusterConfig(len(mf.Nodes), f.tr))
	if err != nil {
		return err
	}
	// The previous generation's handles are dropped, not closed: a wire
	// close would delete the daemons' store entries, and other clients
	// (or the rebalance driver) may still be reading them.
	cf, err := cluster.CreateFilePlacementCtx(ctx, mf.StoreName, phys, placementRows(mf), mf.Epoch)
	if err != nil {
		return err
	}
	view, err := cf.SetViewCtx(ctx, 0, lf, 0)
	if err != nil {
		return err
	}
	f.mf = mf
	f.cluster = cluster
	f.cf = cf
	f.view = view
	return nil
}

// refresh refetches the placement map and rebinds when it moved.
func (f *File) refresh(ctx context.Context) error {
	mf, err := f.fs.md.MetaOpen(ctx, f.name)
	if err != nil {
		return err
	}
	if f.mf != nil && mf.Epoch == f.mf.Epoch {
		f.mf.Length = mf.Length
		return nil
	}
	return f.bind(ctx, mf)
}

// Name returns the namespace name.
func (f *File) Name() string { return f.name }

// Placement returns the cached placement map.
func (f *File) Placement() *rpc.MetaFile {
	f.mu.Lock()
	defer f.mu.Unlock()
	cp := *f.mf
	cp.Nodes = append([]string(nil), f.mf.Nodes...)
	cp.Assign = append([]int(nil), f.mf.Assign...)
	return &cp
}

// Length returns the cached logical length.
func (f *File) Length() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.mf.Length
}

// Close drops the data-daemon connection pools. The daemons' stores
// stay open — names are shared state owned by the metadata service,
// not by any one client.
func (f *File) Close() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.tr.Close()
}

// staleErr reports whether any failure in err's tree means the
// client's placement view is out of date — a stale-placement verdict,
// or an unknown-file answer from a daemon whose superseded store the
// rebalance GC already swept. Both resolve the same way: refetch the
// map and retry on the current epoch. PartialError outcomes are
// scanned individually, since Unwrap may surface a different node's
// error first.
func staleErr(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, rpc.ErrStalePlacement) || errors.Is(err, rpc.ErrUnknownFile) {
		return true
	}
	var pe *clusterfile.PartialError
	if errors.As(err, &pe) {
		for _, o := range pe.Outcomes {
			if o.Err != nil && (errors.Is(o.Err, rpc.ErrStalePlacement) || errors.Is(o.Err, rpc.ErrUnknownFile)) {
				return true
			}
		}
	}
	return false
}

// degradedStale reports whether a quorum-absorbed failure was a stale
// verdict: the op met quorum, but some replica straddled an epoch
// flip — the caller retries on the new epoch so no replica is torn.
func degradedStale(pe *clusterfile.PartialError) bool {
	if pe == nil {
		return false
	}
	for _, o := range pe.Outcomes {
		if o.Err != nil && errors.Is(o.Err, rpc.ErrStalePlacement) {
			return true
		}
	}
	return false
}

// WriteAt writes p at logical offset off, growing the file. A write
// raced against a placement flip is rejected whole by the fenced/
// moved-on daemons and retried whole on the new epoch — never torn
// across generations.
func (f *File) WriteAt(ctx context.Context, p []byte, off int64) error {
	if len(p) == 0 {
		return nil
	}
	if off < 0 {
		return fmt.Errorf("meta: negative offset %d", off)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	err := f.retryStale(ctx, func() error {
		op, err := f.view.StartWriteCtx(ctx, clusterfile.ToBufferCache, off, off+int64(len(p))-1, p)
		if err != nil {
			return err
		}
		f.cluster.RunAll()
		if op.Err != nil {
			return op.Err
		}
		if degradedStale(op.Degraded) {
			return fmt.Errorf("%w (degraded write straddled an epoch flip)", rpc.ErrStalePlacement)
		}
		return nil
	})
	if err != nil {
		return err
	}
	if end := off + int64(len(p)); end > f.mf.Length {
		mf, err := f.fs.md.MetaExtend(ctx, f.name, end)
		if err != nil {
			return fmt.Errorf("meta: write landed but length extend failed: %w", err)
		}
		f.mf.Length = mf.Length
	}
	return nil
}

// ReadAt fills p from logical offset off. Reads flow during a
// rebalance (the old epoch serves until the commit); only after the
// flip does the stale retry land them on the new generation.
func (f *File) ReadAt(ctx context.Context, p []byte, off int64) error {
	if len(p) == 0 {
		return nil
	}
	if off < 0 {
		return fmt.Errorf("meta: negative offset %d", off)
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.retryStale(ctx, func() error {
		op, err := f.view.StartReadCtx(ctx, off, off+int64(len(p))-1, p)
		if err != nil {
			return err
		}
		f.cluster.RunAll()
		return op.Err
	})
}

// retryStale runs one collective attempt, refetching the placement
// and retrying while daemons answer ErrStalePlacement (bounded by
// MaxRetries). Attempts are whole-operation: a partially-acknowledged
// write is re-issued in full on the new epoch, which is idempotent.
func (f *File) retryStale(ctx context.Context, attempt func() error) error {
	var err error
	for try := 0; try <= f.fs.opts.MaxRetries; try++ {
		if try > 0 {
			if f.fs.metStale != nil {
				f.fs.metStale.Inc()
			}
			select {
			case <-time.After(f.fs.opts.RetryBackoff):
			case <-ctx.Done():
				return ctx.Err()
			}
			if rerr := f.refresh(ctx); rerr != nil {
				return fmt.Errorf("meta: placement refresh: %w", rerr)
			}
		}
		if err = attempt(); !staleErr(err) {
			return err
		}
	}
	return fmt.Errorf("meta: placement still stale after %d retries: %w", f.fs.opts.MaxRetries, err)
}

// Package meta implements the metadata service of the elastic
// cluster: a flat multi-file namespace whose entries carry a
// versioned placement map (epoch, node list, assign permutation), a
// membership table of data daemons, and the client/driver sides of
// the online-rebalance protocol that moves a file between placements
// as a paper redistribution (MAP_new ∘ MAP⁻¹_old).
//
// The state lives in a crash-safe append-only log with snapshot
// compaction (store.go); parafilemd serves it over the storage wire's
// framing (service.go); a 2f+1 group of parafilemd nodes replicates
// the log leader-to-followers under a leased term (group.go); clients
// open files by name, cache the placement map, refetch it on
// ErrStalePlacement and fail over between endpoints on ErrNotLeader
// (fs.go); and the rebalance driver fences, copies and commits
// placement flips (rebalance.go).
package meta

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"parafile/internal/codec"
	"parafile/internal/fault"
	"parafile/internal/obs"
	"parafile/internal/rpc"
)

// Store errors the service maps onto wire error codes.
var (
	// ErrNotFound: the namespace has no entry under the name.
	ErrNotFound = errors.New("meta: file not found")
	// ErrExists: create of a name that is already present.
	ErrExists = errors.New("meta: file already exists")
	// ErrStaleEpoch: a commit named an epoch the file has moved past —
	// the CAS lost; the caller must refetch and re-drive.
	ErrStaleEpoch = errors.New("meta: placement epoch has moved")
	// ErrNodeBusy: a decommission was requested for a node that is
	// still active or still referenced by a file's placement.
	ErrNodeBusy = errors.New("meta: node still referenced")
	// ErrNotCommitted: the mutation is durable in the local log but
	// quorum replication failed, so its cluster-wide outcome is
	// unknown — it survives if this node's log wins the next election
	// and is overwritten otherwise. Callers must treat the operation
	// as failed and retry through the (new) leader.
	ErrNotCommitted = errors.New("meta: mutation not replicated to a quorum")
	// ErrMisrestored: the snapshot on disk is newer than the log tail.
	// No crash of this store leaves that state behind (the log is only
	// truncated after the snapshot that covers it is durable), so the
	// directory was reassembled from mismatched backups; replaying it
	// would silently roll acknowledged mutations back.
	ErrMisrestored = errors.New("meta: snapshot is newer than the log tail (mis-restored backup)")
)

// Record types of the append-only log. recPut carries the FULL
// MetaFile state (create, commit and extend all write the complete
// record), so replay is trivially idempotent: the last put wins, and
// replaying a pre-snapshot log over a snapshot converges to the same
// namespace.
const (
	recPut  byte = 1
	recDel  byte = 2
	recNode byte = 3
	// recEntry wraps any of the above in a replication envelope:
	// [recEntry][uvarint index][uvarint term][inner record]. Indexes
	// are dense and monotonic; the term is the leader term that
	// proposed the mutation. Standalone stores (term 0) write
	// envelopes too, so every log carries positions.
	recEntry byte = 4
	// recApplied is the snapshot header: [recApplied][uvarint index]
	// [uvarint term] — the log position the snapshot state covers.
	// Always the first record of an indexed snapshot.
	recApplied byte = 5
)

const (
	logName  = "meta.log"
	snapName = "meta.snap"
	tmpName  = "meta.snap.tmp"
	voteName = "meta.vote"
)

// snapMagic heads a snapshot file; a file without it is rejected
// (a torn rename cannot produce one, the write-fsync-rename order
// guarantees the named snapshot is always complete).
var snapMagic = []byte("pfmeta01")

// defaultSnapshotEvery is the log size that triggers compaction.
const defaultSnapshotEvery = 1 << 20

// epochTermShift positions the leader term in the high bits of every
// placement epoch a replicated store hands out: epoch ≥ term<<20 for
// every epoch committed under that term, so any epoch a deposed
// leader's driver staged (term T) sorts below every epoch the new
// leader commits (term > T) — the data daemons' existing epoch
// ratchet then fences the deposed writes with no new daemon code. The
// 20-bit band allows ~10⁶ rebalances within one term before an epoch
// would cross into the next term's band.
const epochTermShift = 20

var storeCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// CrashPoint names one durability boundary inside the store. The
// torture test's StoreConfig.Crash hook returns an error at a chosen
// point to simulate the process dying exactly there: the store
// abandons the operation mid-flight (leaving whatever bytes the real
// crash would have left) and must not be used afterwards — the test
// reopens the directory and asserts replay converges.
type CrashPoint string

// The crash points, in the order an append and a snapshot cross them.
const (
	// CrashAppendPre: before any log bytes of the record are written.
	CrashAppendPre CrashPoint = "append.pre"
	// CrashAppendPartial: half the record frame written (torn tail).
	CrashAppendPartial CrashPoint = "append.partial"
	// CrashAppendUnsynced: the full frame written but not fsynced.
	CrashAppendUnsynced CrashPoint = "append.unsynced"
	// CrashAppendSynced: the record is durable; the caller never
	// learned it (the ack was lost with the process).
	CrashAppendSynced CrashPoint = "append.synced"
	// CrashSnapPartial: half the snapshot tmp written.
	CrashSnapPartial CrashPoint = "snap.partial"
	// CrashSnapUnsynced: the full tmp written but not fsynced.
	CrashSnapUnsynced CrashPoint = "snap.unsynced"
	// CrashSnapUnrenamed: the tmp is durable but never renamed.
	CrashSnapUnrenamed CrashPoint = "snap.unrenamed"
	// CrashSnapRenamed: the snapshot is live; the log (a now-redundant
	// prefix history) was never truncated.
	CrashSnapRenamed CrashPoint = "snap.renamed"
)

// CrashPoints lists every crash point for tests to sweep.
var CrashPoints = []CrashPoint{
	CrashAppendPre, CrashAppendPartial, CrashAppendUnsynced, CrashAppendSynced,
	CrashSnapPartial, CrashSnapUnsynced, CrashSnapUnrenamed, CrashSnapRenamed,
}

// Replication describes one durable log entry handed to the
// replicator hook: its position, the tail it follows (what followers
// check against their own), and the inner record payload exactly as
// followers must append it. A follower that nacks (diverged or
// behind) is repaired asynchronously by snapshot install; the
// mutation's quorum comes from the peers that ack.
type Replication struct {
	PrevIndex, PrevTerm uint64
	Index, Term         uint64
	Payload             []byte
}

// ReplicateFunc ships one durable log entry to a quorum of followers
// before the mutation is acknowledged. It runs under the store lock
// (mutations are serialized through replication by design); returning
// an error marks the mutation ErrNotCommitted.
type ReplicateFunc func(ctx context.Context, r Replication) error

// Store is the durable namespace + membership state of the metadata
// service. Every mutation appends one framed record to the log
// ([uvarint len][payload][crc32c]) and fsyncs before returning;
// snapshot compaction rewrites the current state into meta.snap
// (write tmp, fsync, rename) and truncates the log. A crash at any
// point replays to the last complete record: a torn log tail is
// discarded, a torn snapshot tmp is ignored, and a crash between the
// snapshot rename and the log truncation is safe because the log is a
// prefix history whose replay over the snapshot converges.
type Store struct {
	mu    sync.Mutex
	dir   string
	log   *os.File
	inj   *fault.Injector
	crash func(CrashPoint) error

	files     map[string]*rpc.MetaFile
	nodes     map[string]byte
	nodeOrder []string

	// lastIndex/lastTerm are the log tail: the position of the newest
	// record (snapshot base included). term is the leader term stamped
	// into new entries and epoch floors (0 = standalone). The atomic
	// shadows let the group's heartbeat loop read the tail without
	// waiting out a replication round that holds mu.
	lastIndex, lastTerm uint64
	tailIndex, tailTerm atomic.Uint64
	snapIndex           uint64
	term                uint64
	replicate           ReplicateFunc

	logBytes      int64
	snapshotEvery int64

	metAppends   *obs.Counter
	metSnapshots *obs.Counter
	metFiles     *obs.Gauge
	metNodes     *obs.Gauge
	metLogBytes  *obs.Gauge
}

// StoreConfig configures OpenStore.
type StoreConfig struct {
	// Fault, when non-nil, interposes the injector on log appends
	// (fault.OpMetaAppend) and snapshots (fault.OpMetaSnapshot), node 0.
	Fault *fault.Injector
	// SnapshotEvery is the log size in bytes that triggers compaction
	// (default 1 MiB; negative disables automatic snapshots).
	SnapshotEvery int64
	// Metrics receives the store series; nil records nothing.
	Metrics *obs.Registry
	// Crash, when non-nil, is consulted at every durability boundary;
	// a non-nil return simulates the process dying there (see
	// CrashPoint). Test-only: after a simulated crash the store must
	// be abandoned and the directory reopened.
	Crash func(CrashPoint) error
}

// OpenStore opens (or initialises) the metadata store rooted at dir,
// replaying the snapshot and log into memory.
func OpenStore(dir string, cfg StoreConfig) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	st := &Store{
		dir:           dir,
		inj:           cfg.Fault,
		crash:         cfg.Crash,
		files:         make(map[string]*rpc.MetaFile),
		nodes:         make(map[string]byte),
		snapshotEvery: cfg.SnapshotEvery,
	}
	if st.snapshotEvery == 0 {
		st.snapshotEvery = defaultSnapshotEvery
	}
	if reg := cfg.Metrics; reg != nil {
		st.metAppends = reg.Counter("parafile_meta_log_appends_total")
		st.metSnapshots = reg.Counter("parafile_meta_snapshots_total")
		st.metFiles = reg.Gauge("parafile_meta_files")
		st.metNodes = reg.Gauge("parafile_meta_nodes")
		st.metLogBytes = reg.Gauge("parafile_meta_log_bytes")
	}
	// A leftover snapshot tmp is a crash mid-snapshot: the rename never
	// happened, so the old snapshot + log still hold the full state.
	os.Remove(filepath.Join(dir, tmpName))

	if err := st.loadSnapshot(); err != nil {
		return nil, err
	}
	if err := st.replayLog(); err != nil {
		return nil, err
	}
	logf, err := os.OpenFile(filepath.Join(dir, logName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st.log = logf
	if fi, err := logf.Stat(); err == nil {
		st.logBytes = fi.Size()
	}
	st.setTail(st.lastIndex, st.lastTerm)
	st.publishGauges()
	return st, nil
}

func (st *Store) setTail(index, term uint64) {
	st.lastIndex, st.lastTerm = index, term
	st.tailIndex.Store(index)
	st.tailTerm.Store(term)
}

func (st *Store) publishGauges() {
	if st.metFiles != nil {
		st.metFiles.Set(int64(len(st.files)))
		st.metNodes.Set(int64(len(st.nodes)))
		st.metLogBytes.Set(st.logBytes)
	}
}

func (st *Store) crashAt(p CrashPoint) error {
	if st.crash != nil {
		return st.crash(p)
	}
	return nil
}

// LastEntry returns the log tail (index, term) without taking the
// store lock, so heartbeats read it even while a replication round is
// in flight.
func (st *Store) LastEntry() (index, term uint64) {
	return st.tailIndex.Load(), st.tailTerm.Load()
}

// SetTerm installs the leader term stamped into new entries and the
// placement-epoch floor. The group calls it on every term change.
func (st *Store) SetTerm(term uint64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.term = term
}

// Term returns the currently installed leader term.
func (st *Store) Term() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.term
}

// SetReplicator installs the quorum-replication hook run inside every
// mutation after its local append. Install before serving traffic.
func (st *Store) SetReplicator(fn ReplicateFunc) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.replicate = fn
}

// epochFloorLocked is the smallest placement epoch the current term
// may hand out (0 when standalone).
func (st *Store) epochFloorLocked() uint64 {
	if st.term == 0 {
		return 0
	}
	return st.term << epochTermShift
}

// EpochFloor exposes the current term's epoch floor (for drivers that
// stage daemon stores before committing).
func (st *Store) EpochFloor() uint64 {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.epochFloorLocked()
}

// loadSnapshot replays meta.snap, if present. Unlike the log, a named
// snapshot must be complete — it only ever appears via rename after
// fsync — so corruption here is a hard error, not a torn tail.
func (st *Store) loadSnapshot() error {
	data, err := os.ReadFile(filepath.Join(st.dir, snapName))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	files, nodes, order, idx, term, err := decodeSnapshot(data)
	if err != nil {
		return fmt.Errorf("meta: %s: %w", snapName, err)
	}
	st.files, st.nodes, st.nodeOrder = files, nodes, order
	st.snapIndex = idx
	st.setTail(idx, term)
	return nil
}

// decodeSnapshot parses snapshot bytes into fresh state, leaving the
// caller's maps untouched on error. Legacy snapshots without a
// recApplied header decode with a zero position.
func decodeSnapshot(data []byte) (files map[string]*rpc.MetaFile, nodes map[string]byte, nodeOrder []string, index, term uint64, err error) {
	if len(data) < len(snapMagic) || string(data[:len(snapMagic)]) != string(snapMagic) {
		return nil, nil, nil, 0, 0, errors.New("bad snapshot magic")
	}
	tmp := &Store{
		files: make(map[string]*rpc.MetaFile),
		nodes: make(map[string]byte),
	}
	rest := data[len(snapMagic):]
	first := true
	for len(rest) > 0 {
		payload, next, rerr := readRecord(rest)
		if rerr != nil {
			return nil, nil, nil, 0, 0, rerr
		}
		if first && len(payload) > 0 && payload[0] == recApplied {
			if index, term, err = readApplied(payload); err != nil {
				return nil, nil, nil, 0, 0, err
			}
		} else if err = tmp.apply(payload); err != nil {
			return nil, nil, nil, 0, 0, err
		}
		first = false
		rest = next
	}
	return tmp.files, tmp.nodes, tmp.nodeOrder, index, term, nil
}

// replayLog replays meta.log to the last complete record, truncating
// a torn tail (the crash-mid-append case) in place. Envelope records
// at or below the snapshot's applied index are the prefix history a
// crash-before-truncate leaves behind and replay as no-ops; an index
// gap means records are missing and is a hard error; and a log whose
// newest record sits below the applied index can only come from a
// mis-restored backup (ErrMisrestored) — accepting it would silently
// roll acknowledged mutations back.
func (st *Store) replayLog() error {
	path := filepath.Join(st.dir, logName)
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	good := 0
	sawIndexed := false
	var maxIndex uint64
	rest := data
	for len(rest) > 0 {
		payload, next, rerr := readRecord(rest)
		if rerr != nil {
			// Torn or corrupt tail: everything before it replayed; drop
			// the rest so the next append starts on a record boundary.
			if terr := os.Truncate(path, int64(good)); terr != nil {
				return terr
			}
			break
		}
		if len(payload) > 0 && payload[0] == recEntry {
			idx, term, inner, eerr := readEntry(payload)
			if eerr != nil {
				return fmt.Errorf("meta: %s: %w", logName, eerr)
			}
			sawIndexed = true
			if idx > maxIndex {
				maxIndex = idx
			}
			switch {
			case idx <= st.lastIndex:
				// Prefix history already covered by the snapshot (or a
				// duplicate append): replay is a no-op.
			case idx == st.lastIndex+1:
				if err := st.apply(inner); err != nil {
					return fmt.Errorf("meta: %s: %w", logName, err)
				}
				st.setTail(idx, term)
			default:
				return fmt.Errorf("meta: %s: log gap: entry %d follows tail %d", logName, idx, st.lastIndex)
			}
		} else {
			// Legacy unindexed record: sequential by construction.
			if err := st.apply(payload); err != nil {
				return fmt.Errorf("meta: %s: %w", logName, err)
			}
			st.setTail(st.lastIndex+1, st.lastTerm)
			if st.lastIndex > maxIndex {
				maxIndex = st.lastIndex
			}
			sawIndexed = sawIndexed || st.snapIndex > 0
		}
		good = len(data) - len(next)
		rest = next
	}
	if sawIndexed && maxIndex < st.snapIndex {
		return fmt.Errorf("%w: snapshot covers index %d, log ends at %d", ErrMisrestored, st.snapIndex, maxIndex)
	}
	return nil
}

// readRecord splits one [uvarint len][payload][crc32c] record off buf.
func readRecord(buf []byte) (payload, rest []byte, err error) {
	n, w := binary.Uvarint(buf)
	if w <= 0 {
		return nil, nil, errors.New("truncated record length")
	}
	if n > 1<<24 {
		return nil, nil, fmt.Errorf("implausible record length %d", n)
	}
	body := buf[w:]
	if uint64(len(body)) < n+4 {
		return nil, nil, errors.New("truncated record")
	}
	payload = body[:n]
	sum := binary.BigEndian.Uint32(body[n : n+4])
	if crc32.Checksum(payload, storeCastagnoli) != sum {
		return nil, nil, errors.New("record checksum mismatch")
	}
	return payload, body[n+4:], nil
}

// entryRecord wraps an inner record in the replication envelope.
func entryRecord(index, term uint64, inner []byte) []byte {
	buf := binary.AppendUvarint([]byte{recEntry}, index)
	buf = binary.AppendUvarint(buf, term)
	return append(buf, inner...)
}

// readEntry splits a recEntry payload into position and inner record.
func readEntry(payload []byte) (index, term uint64, inner []byte, err error) {
	rest := payload[1:]
	idx, w := binary.Uvarint(rest)
	if w <= 0 {
		return 0, 0, nil, errors.New("truncated entry index")
	}
	rest = rest[w:]
	trm, w := binary.Uvarint(rest)
	if w <= 0 {
		return 0, 0, nil, errors.New("truncated entry term")
	}
	return idx, trm, rest[w:], nil
}

// appliedRecord is the snapshot position header.
func appliedRecord(index, term uint64) []byte {
	buf := binary.AppendUvarint([]byte{recApplied}, index)
	return binary.AppendUvarint(buf, term)
}

func readApplied(payload []byte) (index, term uint64, err error) {
	rest := payload[1:]
	idx, w := binary.Uvarint(rest)
	if w <= 0 {
		return 0, 0, errors.New("truncated applied index")
	}
	rest = rest[w:]
	trm, w := binary.Uvarint(rest)
	if w <= 0 || len(rest) != w {
		return 0, 0, errors.New("truncated applied term")
	}
	return idx, trm, nil
}

// apply folds one decoded record payload into the in-memory state.
func (st *Store) apply(payload []byte) error {
	if len(payload) == 0 {
		return errors.New("empty record")
	}
	switch payload[0] {
	case recPut:
		f, rest, err := rpc.ReadMetaFile(payload[1:])
		if err != nil {
			return err
		}
		if len(rest) != 0 {
			return errors.New("trailing bytes after file record")
		}
		st.files[f.Name] = f
	case recDel:
		name, err := readRecString(payload[1:])
		if err != nil {
			return err
		}
		delete(st.files, name)
	case recNode:
		if len(payload) < 2 {
			return errors.New("short node record")
		}
		state := payload[len(payload)-1]
		addr, err := readRecString(payload[1 : len(payload)-1])
		if err != nil {
			return err
		}
		if _, known := st.nodes[addr]; !known {
			st.nodeOrder = append(st.nodeOrder, addr)
		}
		st.nodes[addr] = state
	default:
		return fmt.Errorf("unknown record type %d", payload[0])
	}
	return nil
}

// readRecString decodes one length-prefixed string occupying all of buf.
func readRecString(buf []byte) (string, error) {
	n, w := binary.Uvarint(buf)
	if w <= 0 || uint64(len(buf)-w) != n {
		return "", errors.New("bad string record")
	}
	return string(buf[w : w+int(n)]), nil
}

// writeFrameLocked frames, writes and fsyncs one envelope payload,
// crossing the append crash points in order. Caller holds st.mu.
func (st *Store) writeFrameLocked(payload []byte) error {
	if err := st.crashAt(CrashAppendPre); err != nil {
		return err
	}
	frame := appendFramed(nil, payload)
	if st.crash != nil {
		if err := st.crash(CrashAppendPartial); err != nil {
			// The real crash tears the frame mid-write: leave half of it.
			st.log.Write(frame[:len(frame)/2])
			return err
		}
	}
	if _, err := st.log.Write(frame); err != nil {
		return err
	}
	if err := st.crashAt(CrashAppendUnsynced); err != nil {
		return err
	}
	if err := st.log.Sync(); err != nil {
		return err
	}
	st.logBytes += int64(len(frame))
	if st.metAppends != nil {
		st.metAppends.Inc()
	}
	return st.crashAt(CrashAppendSynced)
}

// appendRecord wraps payload in the next envelope, makes it durable
// locally, then replicates it to a quorum. A replication failure
// returns ErrNotCommitted: the caller still applies the mutation (the
// entry is in the durable log, so memory must match what a restart
// would replay) but reports failure — the group reconciles the entry
// through the next election. Caller holds st.mu.
func (st *Store) appendRecord(ctx context.Context, op fault.Op, name string, payload []byte) error {
	if st.inj != nil {
		if err := st.inj.Fire(ctx, 0, op, name); err != nil {
			return err
		}
	}
	prevIndex, prevTerm := st.lastIndex, st.lastTerm
	index, term := st.lastIndex+1, st.term
	if err := st.writeFrameLocked(entryRecord(index, term, payload)); err != nil {
		return err
	}
	st.setTail(index, term)
	st.publishGauges()
	if st.replicate != nil {
		r := Replication{
			PrevIndex: prevIndex, PrevTerm: prevTerm,
			Index: index, Term: term,
			Payload: payload,
		}
		if err := st.replicate(ctx, r); err != nil {
			return fmt.Errorf("%w: %v", ErrNotCommitted, err)
		}
	}
	return nil
}

// maybeSnapshot compacts once the log outgrows the threshold. Called
// by mutators after the mutation is applied to memory, so the
// serialized state always covers the record that triggered it.
// Compaction failure is not a mutation failure: the record is
// durable, the oversized log just survives to the next trigger.
// Caller holds st.mu.
func (st *Store) maybeSnapshot(ctx context.Context) {
	if st.snapshotEvery > 0 && st.logBytes >= st.snapshotEvery {
		_ = st.snapshotLocked(ctx)
	}
}

func putRecord(f *rpc.MetaFile) []byte {
	return rpc.AppendMetaFile([]byte{recPut}, f)
}

func delRecord(name string) []byte {
	buf := append([]byte{recDel}, codec.AppendUvarint(nil, uint64(len(name)))...)
	return append(buf, name...)
}

func nodeRecord(addr string, state byte) []byte {
	buf := append([]byte{recNode}, codec.AppendUvarint(nil, uint64(len(addr)))...)
	buf = append(buf, addr...)
	return append(buf, state)
}

// Snapshot compacts the store: current state into meta.snap, log
// truncated. Exposed for tests and the admin path; mutations trigger
// it automatically past StoreConfig.SnapshotEvery.
func (st *Store) Snapshot(ctx context.Context) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.snapshotLocked(ctx)
}

// serializeLocked renders the current state in snapshot format:
// magic, applied-position header, file records, node records.
func (st *Store) serializeLocked() []byte {
	buf := append([]byte(nil), snapMagic...)
	buf = appendFramed(buf, appliedRecord(st.lastIndex, st.lastTerm))
	names := make([]string, 0, len(st.files))
	for name := range st.files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		buf = appendFramed(buf, putRecord(st.files[name]))
	}
	for _, addr := range st.nodeOrder {
		buf = appendFramed(buf, nodeRecord(addr, st.nodes[addr]))
	}
	return buf
}

// SerializeState renders the full current state (snapshot format) for
// replication-driven state transfer to a diverged follower.
func (st *Store) SerializeState() []byte {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.serializeLocked()
}

// installTempLocked writes buf as the new snapshot: tmp, fsync,
// rename — crossing the snapshot crash points in order.
func (st *Store) installTempLocked(buf []byte) error {
	tmp := filepath.Join(st.dir, tmpName)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if st.crash != nil {
		if err := st.crash(CrashSnapPartial); err != nil {
			f.Write(buf[:len(buf)/2])
			f.Close()
			return err
		}
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := st.crashAt(CrashSnapUnsynced); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := st.crashAt(CrashSnapUnrenamed); err != nil {
		return err
	}
	if err := os.Rename(tmp, filepath.Join(st.dir, snapName)); err != nil {
		os.Remove(tmp)
		return err
	}
	return st.crashAt(CrashSnapRenamed)
}

func (st *Store) snapshotLocked(ctx context.Context) error {
	if st.inj != nil {
		if err := st.inj.Fire(ctx, 0, fault.OpMetaSnapshot, ""); err != nil {
			return err
		}
	}
	if err := st.installTempLocked(st.serializeLocked()); err != nil {
		return err
	}
	// The snapshot is durable; the log's history is now redundant.
	// A crash before this truncation replays it over the snapshot,
	// which converges (puts carry full state).
	if err := st.log.Truncate(0); err != nil {
		return err
	}
	if _, err := st.log.Seek(0, 0); err != nil {
		return err
	}
	st.logBytes = 0
	st.snapIndex = st.lastIndex
	if st.metSnapshots != nil {
		st.metSnapshots.Inc()
	}
	st.publishGauges()
	return nil
}

// AppendEntry appends one replicated entry shipped by the leader.
// Duplicates (index at or below the tail) are no-ops; a gap is an
// error the group turns into a nack (triggering a snapshot install).
func (st *Store) AppendEntry(ctx context.Context, index, term uint64, payload []byte) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if index <= st.lastIndex {
		return nil
	}
	if index != st.lastIndex+1 {
		return fmt.Errorf("meta: log gap: entry %d follows tail %d", index, st.lastIndex)
	}
	if err := st.writeFrameLocked(entryRecord(index, term, payload)); err != nil {
		return err
	}
	if err := st.apply(payload); err != nil {
		return err
	}
	st.setTail(index, term)
	st.publishGauges()
	st.maybeSnapshot(ctx)
	return nil
}

// InstallSnapshot atomically replaces the entire store state with a
// serialized state shipped by the leader (the repair path for a
// diverged or lagging follower): validate, write-tmp + fsync +
// rename, truncate the log, swap memory.
func (st *Store) InstallSnapshot(ctx context.Context, state []byte) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	files, nodes, order, idx, term, err := decodeSnapshot(state)
	if err != nil {
		return fmt.Errorf("meta: install snapshot: %w", err)
	}
	if err := st.installTempLocked(state); err != nil {
		return err
	}
	if err := st.log.Truncate(0); err != nil {
		return err
	}
	if _, err := st.log.Seek(0, 0); err != nil {
		return err
	}
	st.logBytes = 0
	st.files, st.nodes, st.nodeOrder = files, nodes, order
	st.snapIndex = idx
	st.setTail(idx, term)
	if st.metSnapshots != nil {
		st.metSnapshots.Inc()
	}
	st.publishGauges()
	return nil
}

func appendFramed(buf, payload []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	return binary.BigEndian.AppendUint32(buf, crc32.Checksum(payload, storeCastagnoli))
}

// SaveVote durably records the election state (current term + the
// candidate voted for in it) with the same tmp + fsync + rename
// pattern as snapshots, so a voter never forgets a granted ballot
// across a crash.
func (st *Store) SaveVote(term uint64, votedFor string) error {
	buf := binary.AppendUvarint(nil, term)
	buf = binary.AppendUvarint(buf, uint64(len(votedFor)))
	buf = append(buf, votedFor...)
	buf = binary.BigEndian.AppendUint32(buf, crc32.Checksum(buf, storeCastagnoli))
	tmp := filepath.Join(st.dir, voteName+".tmp")
	if err := os.WriteFile(tmp, buf, 0o644); err != nil {
		return err
	}
	f, err := os.Open(tmp)
	if err == nil {
		f.Sync()
		f.Close()
	}
	return os.Rename(tmp, filepath.Join(st.dir, voteName))
}

// LoadVote reads the persisted election state (zero values when none
// or corrupt — a torn vote file forgets the ballot, which only risks
// a double vote if the crash hit exactly between persist and send;
// the file is written before any ballot leaves the node).
func (st *Store) LoadVote() (term uint64, votedFor string) {
	data, err := os.ReadFile(filepath.Join(st.dir, voteName))
	if err != nil || len(data) < 4 {
		return 0, ""
	}
	body, sum := data[:len(data)-4], binary.BigEndian.Uint32(data[len(data)-4:])
	if crc32.Checksum(body, storeCastagnoli) != sum {
		return 0, ""
	}
	t, w := binary.Uvarint(body)
	if w <= 0 {
		return 0, ""
	}
	body = body[w:]
	n, w := binary.Uvarint(body)
	if w <= 0 || uint64(len(body)-w) != n {
		return 0, ""
	}
	return t, string(body[w:])
}

// cloneFile deep-copies a record so callers cannot alias store state.
func cloneFile(f *rpc.MetaFile) *rpc.MetaFile {
	cp := *f
	cp.Nodes = append([]string(nil), f.Nodes...)
	cp.Assign = append([]int(nil), f.Assign...)
	return &cp
}

// Get returns the named file's record.
func (st *Store) Get(name string) (*rpc.MetaFile, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	f, ok := st.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return cloneFile(f), nil
}

// List returns every namespace entry, name-sorted.
func (st *Store) List() []*rpc.MetaFile {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]*rpc.MetaFile, 0, len(st.files))
	for _, f := range st.files {
		out = append(out, cloneFile(f))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Create persists a new namespace entry, raising its epoch to the
// current term's floor so every placement handed out under term T
// carries an epoch ≥ T<<20.
func (st *Store) Create(ctx context.Context, f *rpc.MetaFile) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, dup := st.files[f.Name]; dup {
		return fmt.Errorf("%w: %q", ErrExists, f.Name)
	}
	if floor := st.epochFloorLocked(); f.Epoch < floor {
		f.Epoch = floor
	}
	err := st.appendRecord(ctx, fault.OpMetaAppend, f.Name, putRecord(f))
	if err != nil && !errors.Is(err, ErrNotCommitted) {
		return err
	}
	st.files[f.Name] = cloneFile(f)
	st.publishGauges()
	st.maybeSnapshot(ctx)
	return err
}

// Remove deletes a namespace entry; removing an absent name is OK
// (idempotent, like the daemons' close).
func (st *Store) Remove(ctx context.Context, name string) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.files[name]; !ok {
		return nil
	}
	err := st.appendRecord(ctx, fault.OpMetaAppend, name, delRecord(name))
	if err != nil && !errors.Is(err, ErrNotCommitted) {
		return err
	}
	delete(st.files, name)
	st.publishGauges()
	st.maybeSnapshot(ctx)
	return err
}

// Commit is the placement CAS: if the file still sits at req.OldEpoch
// it flips to the committed epoch with the new store name, node list
// and assign permutation, returning the committed record; otherwise
// ErrStaleEpoch. The committed epoch is req.NewEpoch when set (the
// driver stamped it into the staged daemon stores, so it must clear
// the current term's floor — a floor violation means the driver
// staged under a deposed leader and must re-drive), else OldEpoch+1
// raised to the floor.
func (st *Store) Commit(ctx context.Context, req *rpc.MetaCommitReq) (*rpc.MetaFile, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	f, ok := st.files[req.Name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, req.Name)
	}
	if f.Epoch != req.OldEpoch {
		return nil, fmt.Errorf("%w: %q is at epoch %d, commit named %d",
			ErrStaleEpoch, req.Name, f.Epoch, req.OldEpoch)
	}
	if len(req.Nodes) == 0 || len(req.Assign) == 0 {
		return nil, errors.New("meta: commit with empty placement")
	}
	epoch := req.OldEpoch + 1
	floor := st.epochFloorLocked()
	if req.NewEpoch != 0 {
		if req.NewEpoch <= req.OldEpoch {
			return nil, fmt.Errorf("meta: commit epoch %d not past %d", req.NewEpoch, req.OldEpoch)
		}
		if req.NewEpoch < floor {
			return nil, fmt.Errorf("%w: commit epoch %d is below term floor %d (staged under a deposed leader)",
				ErrStaleEpoch, req.NewEpoch, floor)
		}
		epoch = req.NewEpoch
	} else if epoch < floor {
		epoch = floor
	}
	next := cloneFile(f)
	next.Epoch = epoch
	next.StoreName = req.StoreName
	next.Nodes = append([]string(nil), req.Nodes...)
	next.Assign = append([]int(nil), req.Assign...)
	err := st.appendRecord(ctx, fault.OpMetaAppend, req.Name, putRecord(next))
	if err != nil && !errors.Is(err, ErrNotCommitted) {
		return nil, err
	}
	st.files[req.Name] = next
	st.maybeSnapshot(ctx)
	if err != nil {
		return nil, err
	}
	return cloneFile(next), nil
}

// Extend ratchets the file's logical length (never shrinks).
func (st *Store) Extend(ctx context.Context, name string, length int64) (*rpc.MetaFile, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	f, ok := st.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if length > f.Length {
		next := cloneFile(f)
		next.Length = length
		err := st.appendRecord(ctx, fault.OpMetaAppend, name, putRecord(next))
		if err != nil && !errors.Is(err, ErrNotCommitted) {
			return nil, err
		}
		st.files[name] = next
		st.maybeSnapshot(ctx)
		if err != nil {
			return nil, err
		}
	}
	return cloneFile(st.files[name]), nil
}

// Nodes returns the membership table in registration order.
func (st *Store) Nodes() []rpc.MetaNode {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.nodesLocked()
}

func (st *Store) nodesLocked() []rpc.MetaNode {
	out := make([]rpc.MetaNode, 0, len(st.nodeOrder))
	for _, addr := range st.nodeOrder {
		out = append(out, rpc.MetaNode{Addr: addr, State: st.nodes[addr]})
	}
	return out
}

// ActiveNodes returns the addresses eligible for new placements, in
// registration order.
func (st *Store) ActiveNodes() []string {
	st.mu.Lock()
	defer st.mu.Unlock()
	var out []string
	for _, addr := range st.nodeOrder {
		if st.nodes[addr] == rpc.NodeActive {
			out = append(out, addr)
		}
	}
	return out
}

// SetNode registers a node or changes its membership state, returning
// the updated table. Decommission (NodeRemoved) is validated: the node
// must already be draining and no file's placement may still reference
// it — rebalance first, then remove.
func (st *Store) SetNode(ctx context.Context, addr string, state byte) ([]rpc.MetaNode, error) {
	if addr == "" {
		return nil, errors.New("meta: empty node address")
	}
	if state > rpc.NodeRemoved {
		return nil, fmt.Errorf("meta: unknown node state %d", state)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if state == rpc.NodeRemoved {
		if st.nodes[addr] != rpc.NodeDraining {
			return nil, fmt.Errorf("%w: %s is %s, drain it first",
				ErrNodeBusy, addr, rpc.NodeStateName(st.nodes[addr]))
		}
		for _, f := range st.files {
			for _, n := range f.Nodes {
				if n == addr {
					return nil, fmt.Errorf("%w: %s still places file %q",
						ErrNodeBusy, addr, f.Name)
				}
			}
		}
	}
	err := st.appendRecord(ctx, fault.OpMetaAppend, addr, nodeRecord(addr, state))
	if err != nil && !errors.Is(err, ErrNotCommitted) {
		return nil, err
	}
	if _, known := st.nodes[addr]; !known {
		st.nodeOrder = append(st.nodeOrder, addr)
	}
	st.nodes[addr] = state
	st.publishGauges()
	st.maybeSnapshot(ctx)
	if err != nil {
		return nil, err
	}
	return st.nodesLocked(), nil
}

// Close syncs and closes the log.
func (st *Store) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.log == nil {
		return nil
	}
	err := st.log.Sync()
	if cerr := st.log.Close(); err == nil {
		err = cerr
	}
	st.log = nil
	return err
}

// Package meta implements the metadata service of the elastic
// cluster: a flat multi-file namespace whose entries carry a
// versioned placement map (epoch, node list, assign permutation), a
// membership table of data daemons, and the client/driver sides of
// the online-rebalance protocol that moves a file between placements
// as a paper redistribution (MAP_new ∘ MAP⁻¹_old).
//
// The state lives in a crash-safe append-only log with snapshot
// compaction (store.go); parafilemd serves it over the storage wire's
// framing (service.go); clients open files by name, cache the
// placement map and refetch it on ErrStalePlacement (fs.go); and the
// rebalance driver fences, copies and commits placement flips
// (rebalance.go).
package meta

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"parafile/internal/codec"
	"parafile/internal/fault"
	"parafile/internal/obs"
	"parafile/internal/rpc"
)

// Store errors the service maps onto wire error codes.
var (
	// ErrNotFound: the namespace has no entry under the name.
	ErrNotFound = errors.New("meta: file not found")
	// ErrExists: create of a name that is already present.
	ErrExists = errors.New("meta: file already exists")
	// ErrStaleEpoch: a commit named an epoch the file has moved past —
	// the CAS lost; the caller must refetch and re-drive.
	ErrStaleEpoch = errors.New("meta: placement epoch has moved")
	// ErrNodeBusy: a decommission was requested for a node that is
	// still active or still referenced by a file's placement.
	ErrNodeBusy = errors.New("meta: node still referenced")
)

// Record types of the append-only log. recPut carries the FULL
// MetaFile state (create, commit and extend all write the complete
// record), so replay is trivially idempotent: the last put wins, and
// replaying a pre-snapshot log over a snapshot converges to the same
// namespace.
const (
	recPut  byte = 1
	recDel  byte = 2
	recNode byte = 3
)

const (
	logName  = "meta.log"
	snapName = "meta.snap"
	tmpName  = "meta.snap.tmp"
)

// snapMagic heads a snapshot file; a file without it is rejected
// (a torn rename cannot produce one, the write-fsync-rename order
// guarantees the named snapshot is always complete).
var snapMagic = []byte("pfmeta01")

// defaultSnapshotEvery is the log size that triggers compaction.
const defaultSnapshotEvery = 1 << 20

var storeCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// Store is the durable namespace + membership state of the metadata
// service. Every mutation appends one framed record to the log
// ([uvarint len][payload][crc32c]) and fsyncs before returning;
// snapshot compaction rewrites the current state into meta.snap
// (write tmp, fsync, rename) and truncates the log. A crash at any
// point replays to the last complete record: a torn log tail is
// discarded, a torn snapshot tmp is ignored, and a crash between the
// snapshot rename and the log truncation is safe because the log is a
// prefix history whose replay over the snapshot converges.
type Store struct {
	mu  sync.Mutex
	dir string
	log *os.File
	inj *fault.Injector

	files     map[string]*rpc.MetaFile
	nodes     map[string]byte
	nodeOrder []string

	logBytes      int64
	snapshotEvery int64

	metAppends   *obs.Counter
	metSnapshots *obs.Counter
	metFiles     *obs.Gauge
	metNodes     *obs.Gauge
	metLogBytes  *obs.Gauge
}

// StoreConfig configures OpenStore.
type StoreConfig struct {
	// Fault, when non-nil, interposes the injector on log appends
	// (fault.OpMetaAppend) and snapshots (fault.OpMetaSnapshot), node 0.
	Fault *fault.Injector
	// SnapshotEvery is the log size in bytes that triggers compaction
	// (default 1 MiB; negative disables automatic snapshots).
	SnapshotEvery int64
	// Metrics receives the store series; nil records nothing.
	Metrics *obs.Registry
}

// OpenStore opens (or initialises) the metadata store rooted at dir,
// replaying the snapshot and log into memory.
func OpenStore(dir string, cfg StoreConfig) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	st := &Store{
		dir:           dir,
		inj:           cfg.Fault,
		files:         make(map[string]*rpc.MetaFile),
		nodes:         make(map[string]byte),
		snapshotEvery: cfg.SnapshotEvery,
	}
	if st.snapshotEvery == 0 {
		st.snapshotEvery = defaultSnapshotEvery
	}
	if reg := cfg.Metrics; reg != nil {
		st.metAppends = reg.Counter("parafile_meta_log_appends_total")
		st.metSnapshots = reg.Counter("parafile_meta_snapshots_total")
		st.metFiles = reg.Gauge("parafile_meta_files")
		st.metNodes = reg.Gauge("parafile_meta_nodes")
		st.metLogBytes = reg.Gauge("parafile_meta_log_bytes")
	}
	// A leftover snapshot tmp is a crash mid-snapshot: the rename never
	// happened, so the old snapshot + log still hold the full state.
	os.Remove(filepath.Join(dir, tmpName))

	if err := st.loadSnapshot(); err != nil {
		return nil, err
	}
	if err := st.replayLog(); err != nil {
		return nil, err
	}
	logf, err := os.OpenFile(filepath.Join(dir, logName), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, err
	}
	st.log = logf
	if fi, err := logf.Stat(); err == nil {
		st.logBytes = fi.Size()
	}
	st.publishGauges()
	return st, nil
}

func (st *Store) publishGauges() {
	if st.metFiles != nil {
		st.metFiles.Set(int64(len(st.files)))
		st.metNodes.Set(int64(len(st.nodes)))
		st.metLogBytes.Set(st.logBytes)
	}
}

// loadSnapshot replays meta.snap, if present. Unlike the log, a named
// snapshot must be complete — it only ever appears via rename after
// fsync — so corruption here is a hard error, not a torn tail.
func (st *Store) loadSnapshot() error {
	data, err := os.ReadFile(filepath.Join(st.dir, snapName))
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	if len(data) < len(snapMagic) || string(data[:len(snapMagic)]) != string(snapMagic) {
		return fmt.Errorf("meta: %s: bad snapshot magic", snapName)
	}
	rest := data[len(snapMagic):]
	for len(rest) > 0 {
		payload, next, err := readRecord(rest)
		if err != nil {
			return fmt.Errorf("meta: %s: %w", snapName, err)
		}
		if err := st.apply(payload); err != nil {
			return fmt.Errorf("meta: %s: %w", snapName, err)
		}
		rest = next
	}
	return nil
}

// replayLog replays meta.log to the last complete record, truncating
// a torn tail (the crash-mid-append case) in place.
func (st *Store) replayLog() error {
	path := filepath.Join(st.dir, logName)
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil
	}
	if err != nil {
		return err
	}
	good := 0
	rest := data
	for len(rest) > 0 {
		payload, next, err := readRecord(rest)
		if err != nil {
			// Torn or corrupt tail: everything before it replayed; drop
			// the rest so the next append starts on a record boundary.
			return os.Truncate(path, int64(good))
		}
		if err := st.apply(payload); err != nil {
			return fmt.Errorf("meta: %s: %w", logName, err)
		}
		good = len(data) - len(next)
		rest = next
	}
	return nil
}

// readRecord splits one [uvarint len][payload][crc32c] record off buf.
func readRecord(buf []byte) (payload, rest []byte, err error) {
	n, w := binary.Uvarint(buf)
	if w <= 0 {
		return nil, nil, errors.New("truncated record length")
	}
	if n > 1<<24 {
		return nil, nil, fmt.Errorf("implausible record length %d", n)
	}
	body := buf[w:]
	if uint64(len(body)) < n+4 {
		return nil, nil, errors.New("truncated record")
	}
	payload = body[:n]
	sum := binary.BigEndian.Uint32(body[n : n+4])
	if crc32.Checksum(payload, storeCastagnoli) != sum {
		return nil, nil, errors.New("record checksum mismatch")
	}
	return payload, body[n+4:], nil
}

// apply folds one decoded record payload into the in-memory state.
func (st *Store) apply(payload []byte) error {
	if len(payload) == 0 {
		return errors.New("empty record")
	}
	switch payload[0] {
	case recPut:
		f, rest, err := rpc.ReadMetaFile(payload[1:])
		if err != nil {
			return err
		}
		if len(rest) != 0 {
			return errors.New("trailing bytes after file record")
		}
		st.files[f.Name] = f
	case recDel:
		name, err := readRecString(payload[1:])
		if err != nil {
			return err
		}
		delete(st.files, name)
	case recNode:
		if len(payload) < 2 {
			return errors.New("short node record")
		}
		state := payload[len(payload)-1]
		addr, err := readRecString(payload[1 : len(payload)-1])
		if err != nil {
			return err
		}
		if _, known := st.nodes[addr]; !known {
			st.nodeOrder = append(st.nodeOrder, addr)
		}
		st.nodes[addr] = state
	default:
		return fmt.Errorf("unknown record type %d", payload[0])
	}
	return nil
}

// readRecString decodes one length-prefixed string occupying all of buf.
func readRecString(buf []byte) (string, error) {
	n, w := binary.Uvarint(buf)
	if w <= 0 || uint64(len(buf)-w) != n {
		return "", errors.New("bad string record")
	}
	return string(buf[w : w+int(n)]), nil
}

// appendRecord frames, writes and fsyncs one record, then snapshots
// when the log has outgrown the threshold. Caller holds st.mu.
func (st *Store) appendRecord(ctx context.Context, op fault.Op, name string, payload []byte) error {
	if st.inj != nil {
		if err := st.inj.Fire(ctx, 0, op, name); err != nil {
			return err
		}
	}
	frame := binary.AppendUvarint(nil, uint64(len(payload)))
	frame = append(frame, payload...)
	frame = binary.BigEndian.AppendUint32(frame, crc32.Checksum(payload, storeCastagnoli))
	if _, err := st.log.Write(frame); err != nil {
		return err
	}
	if err := st.log.Sync(); err != nil {
		return err
	}
	st.logBytes += int64(len(frame))
	if st.metAppends != nil {
		st.metAppends.Inc()
	}
	st.publishGauges()
	if st.snapshotEvery > 0 && st.logBytes >= st.snapshotEvery {
		// Compaction failure is not a mutation failure: the record is
		// durable, the oversized log just survives to the next trigger.
		_ = st.snapshotLocked(ctx)
	}
	return nil
}

func putRecord(f *rpc.MetaFile) []byte {
	return rpc.AppendMetaFile([]byte{recPut}, f)
}

func delRecord(name string) []byte {
	buf := append([]byte{recDel}, codec.AppendUvarint(nil, uint64(len(name)))...)
	return append(buf, name...)
}

func nodeRecord(addr string, state byte) []byte {
	buf := append([]byte{recNode}, codec.AppendUvarint(nil, uint64(len(addr)))...)
	buf = append(buf, addr...)
	return append(buf, state)
}

// Snapshot compacts the store: current state into meta.snap, log
// truncated. Exposed for tests and the admin path; mutations trigger
// it automatically past StoreConfig.SnapshotEvery.
func (st *Store) Snapshot(ctx context.Context) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.snapshotLocked(ctx)
}

func (st *Store) snapshotLocked(ctx context.Context) error {
	if st.inj != nil {
		if err := st.inj.Fire(ctx, 0, fault.OpMetaSnapshot, ""); err != nil {
			return err
		}
	}
	buf := append([]byte(nil), snapMagic...)
	names := make([]string, 0, len(st.files))
	for name := range st.files {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		buf = appendFramed(buf, putRecord(st.files[name]))
	}
	for _, addr := range st.nodeOrder {
		buf = appendFramed(buf, nodeRecord(addr, st.nodes[addr]))
	}
	tmp := filepath.Join(st.dir, tmpName)
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(buf); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, filepath.Join(st.dir, snapName)); err != nil {
		os.Remove(tmp)
		return err
	}
	// The snapshot is durable; the log's history is now redundant.
	// A crash before this truncation replays it over the snapshot,
	// which converges (puts carry full state).
	if err := st.log.Truncate(0); err != nil {
		return err
	}
	if _, err := st.log.Seek(0, 0); err != nil {
		return err
	}
	st.logBytes = 0
	if st.metSnapshots != nil {
		st.metSnapshots.Inc()
	}
	st.publishGauges()
	return nil
}

func appendFramed(buf, payload []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	return binary.BigEndian.AppendUint32(buf, crc32.Checksum(payload, storeCastagnoli))
}

// cloneFile deep-copies a record so callers cannot alias store state.
func cloneFile(f *rpc.MetaFile) *rpc.MetaFile {
	cp := *f
	cp.Nodes = append([]string(nil), f.Nodes...)
	cp.Assign = append([]int(nil), f.Assign...)
	return &cp
}

// Get returns the named file's record.
func (st *Store) Get(name string) (*rpc.MetaFile, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	f, ok := st.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	return cloneFile(f), nil
}

// List returns every namespace entry, name-sorted.
func (st *Store) List() []*rpc.MetaFile {
	st.mu.Lock()
	defer st.mu.Unlock()
	out := make([]*rpc.MetaFile, 0, len(st.files))
	for _, f := range st.files {
		out = append(out, cloneFile(f))
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Create persists a new namespace entry.
func (st *Store) Create(ctx context.Context, f *rpc.MetaFile) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, dup := st.files[f.Name]; dup {
		return fmt.Errorf("%w: %q", ErrExists, f.Name)
	}
	if err := st.appendRecord(ctx, fault.OpMetaAppend, f.Name, putRecord(f)); err != nil {
		return err
	}
	st.files[f.Name] = cloneFile(f)
	st.publishGauges()
	return nil
}

// Remove deletes a namespace entry; removing an absent name is OK
// (idempotent, like the daemons' close).
func (st *Store) Remove(ctx context.Context, name string) error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if _, ok := st.files[name]; !ok {
		return nil
	}
	if err := st.appendRecord(ctx, fault.OpMetaAppend, name, delRecord(name)); err != nil {
		return err
	}
	delete(st.files, name)
	st.publishGauges()
	return nil
}

// Commit is the placement CAS: if the file still sits at req.OldEpoch
// it flips to OldEpoch+1 with the new store name, node list and assign
// permutation, returning the committed record; otherwise ErrStaleEpoch.
func (st *Store) Commit(ctx context.Context, req *rpc.MetaCommitReq) (*rpc.MetaFile, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	f, ok := st.files[req.Name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, req.Name)
	}
	if f.Epoch != req.OldEpoch {
		return nil, fmt.Errorf("%w: %q is at epoch %d, commit named %d",
			ErrStaleEpoch, req.Name, f.Epoch, req.OldEpoch)
	}
	if len(req.Nodes) == 0 || len(req.Assign) == 0 {
		return nil, errors.New("meta: commit with empty placement")
	}
	next := cloneFile(f)
	next.Epoch = req.OldEpoch + 1
	next.StoreName = req.StoreName
	next.Nodes = append([]string(nil), req.Nodes...)
	next.Assign = append([]int(nil), req.Assign...)
	if err := st.appendRecord(ctx, fault.OpMetaAppend, req.Name, putRecord(next)); err != nil {
		return nil, err
	}
	st.files[req.Name] = next
	return cloneFile(next), nil
}

// Extend ratchets the file's logical length (never shrinks).
func (st *Store) Extend(ctx context.Context, name string, length int64) (*rpc.MetaFile, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	f, ok := st.files[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNotFound, name)
	}
	if length > f.Length {
		next := cloneFile(f)
		next.Length = length
		if err := st.appendRecord(ctx, fault.OpMetaAppend, name, putRecord(next)); err != nil {
			return nil, err
		}
		st.files[name] = next
	}
	return cloneFile(st.files[name]), nil
}

// Nodes returns the membership table in registration order.
func (st *Store) Nodes() []rpc.MetaNode {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.nodesLocked()
}

func (st *Store) nodesLocked() []rpc.MetaNode {
	out := make([]rpc.MetaNode, 0, len(st.nodeOrder))
	for _, addr := range st.nodeOrder {
		out = append(out, rpc.MetaNode{Addr: addr, State: st.nodes[addr]})
	}
	return out
}

// ActiveNodes returns the addresses eligible for new placements, in
// registration order.
func (st *Store) ActiveNodes() []string {
	st.mu.Lock()
	defer st.mu.Unlock()
	var out []string
	for _, addr := range st.nodeOrder {
		if st.nodes[addr] == rpc.NodeActive {
			out = append(out, addr)
		}
	}
	return out
}

// SetNode registers a node or changes its membership state, returning
// the updated table. Decommission (NodeRemoved) is validated: the node
// must already be draining and no file's placement may still reference
// it — rebalance first, then remove.
func (st *Store) SetNode(ctx context.Context, addr string, state byte) ([]rpc.MetaNode, error) {
	if addr == "" {
		return nil, errors.New("meta: empty node address")
	}
	if state > rpc.NodeRemoved {
		return nil, fmt.Errorf("meta: unknown node state %d", state)
	}
	st.mu.Lock()
	defer st.mu.Unlock()
	if state == rpc.NodeRemoved {
		if st.nodes[addr] != rpc.NodeDraining {
			return nil, fmt.Errorf("%w: %s is %s, drain it first",
				ErrNodeBusy, addr, rpc.NodeStateName(st.nodes[addr]))
		}
		for _, f := range st.files {
			for _, n := range f.Nodes {
				if n == addr {
					return nil, fmt.Errorf("%w: %s still places file %q",
						ErrNodeBusy, addr, f.Name)
				}
			}
		}
	}
	if err := st.appendRecord(ctx, fault.OpMetaAppend, addr, nodeRecord(addr, state)); err != nil {
		return nil, err
	}
	if _, known := st.nodes[addr]; !known {
		st.nodeOrder = append(st.nodeOrder, addr)
	}
	st.nodes[addr] = state
	st.publishGauges()
	return st.nodesLocked(), nil
}

// Close syncs and closes the log.
func (st *Store) Close() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.log == nil {
		return nil
	}
	err := st.log.Sync()
	if cerr := st.log.Close(); err == nil {
		err = cerr
	}
	st.log = nil
	return err
}

package meta

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"parafile/internal/clusterfile"
	"parafile/internal/obs"
	"parafile/internal/rpc"
)

// elastic_test.go is the end-to-end elasticity proof: a replicated
// file written over three daemons survives an add-node and then the
// drain of an original node — both executed online as paper
// redistributions — with reads succeeding at every point, the final
// bytes identical to a never-rebalanced control, and a write raced
// against the epoch flip landing whole or not at all.

// testCluster is a metadata service plus a set of data daemons, all
// in-process on loopback.
type testCluster struct {
	t       *testing.T
	reg     *obs.Registry
	tracer  *obs.Tracer
	mdAddr  string
	daemons map[string]func() error
}

func startElasticCluster(t *testing.T, dataNodes int) *testCluster {
	t.Helper()
	tc := &testCluster{
		t:       t,
		reg:     obs.NewRegistry(),
		tracer:  obs.NewTracer("test-driver", 64),
		daemons: make(map[string]func() error),
	}
	st, err := OpenStore(t.TempDir(), StoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	svc := NewService(ServiceConfig{Store: st})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go svc.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		svc.Shutdown(ctx)
	})
	tc.mdAddr = ln.Addr().String()
	for i := 0; i < dataNodes; i++ {
		tc.startDaemon()
	}
	return tc
}

// startDaemon runs one in-memory parafiled on loopback and returns its
// address (it is NOT registered at the metadata service — that is the
// add-node path under test).
func (tc *testCluster) startDaemon() string {
	tc.t.Helper()
	srv := rpc.NewServer(rpc.ServerConfig{Metrics: tc.reg})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		tc.t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ln) }()
	addr := ln.Addr().String()
	stop := func() error {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			return err
		}
		return <-done
	}
	tc.daemons[addr] = stop
	tc.t.Cleanup(func() {
		if s, ok := tc.daemons[addr]; ok {
			delete(tc.daemons, addr)
			s()
		}
	})
	return addr
}

func (tc *testCluster) addrs() []string {
	out := make([]string, 0, len(tc.daemons))
	for a := range tc.daemons {
		out = append(out, a)
	}
	return out
}

func (tc *testCluster) dial() *FS {
	return Dial(tc.mdAddr, Options{Metrics: tc.reg, Tracer: tc.tracer})
}

func patternAt(off int64) byte { return byte(off*197 + 13) }

func patternBuf(off, n int64) []byte {
	buf := make([]byte, n)
	for i := range buf {
		buf[i] = patternAt(off + int64(i))
	}
	return buf
}

// TestElasticAddDrain is the full lifecycle: write at R=2 over 3
// daemons, add a 4th, drain an original, reading concurrently
// throughout, and compare the final bytes to a never-rebalanced
// control file.
func TestElasticAddDrain(t *testing.T) {
	tc := startElasticCluster(t, 3)
	ctx := context.Background()
	cl := tc.dial()
	defer cl.Close()

	original := make([]string, 0, 3)
	for addr := range tc.daemons {
		original = append(original, addr)
		if _, err := cl.SetNode(ctx, addr, rpc.NodeActive); err != nil {
			t.Fatal(err)
		}
	}

	const size = 3 * 3 * 4096 // three whole stripe periods over 3 subfiles
	f, err := cl.Create(ctx, "data", 4096, 2)
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	defer f.Close()
	want := patternBuf(0, size)
	if err := f.WriteAt(ctx, want, 0); err != nil {
		t.Fatalf("initial write: %v", err)
	}
	// The control is the pristine image — the rebalanced file must
	// stay byte-identical to it at every membership change.
	control := append([]byte(nil), want...)

	readCheck := func(when string) {
		r, err := cl.Open(ctx, "data")
		if err != nil {
			t.Fatalf("%s: open: %v", when, err)
		}
		defer r.Close()
		got := make([]byte, len(control))
		if err := r.ReadAt(ctx, got, 0); err != nil {
			t.Fatalf("%s: read: %v", when, err)
		}
		if !bytes.Equal(got, control) {
			t.Fatalf("%s: read-back diverged from the never-rebalanced control", when)
		}
	}
	readCheck("before any membership change")

	// Concurrent reader hammering the file across both rebalances: every
	// read must succeed (old epoch until the commit, refetch after).
	stopReads := make(chan struct{})
	var readerWG sync.WaitGroup
	readerErr := make(chan error, 1)
	readerWG.Add(1)
	go func() {
		defer readerWG.Done()
		rf, err := cl.Open(ctx, "data")
		if err != nil {
			readerErr <- err
			return
		}
		defer rf.Close()
		buf := make([]byte, size)
		for i := 0; ; i++ {
			select {
			case <-stopReads:
				return
			default:
			}
			if err := rf.ReadAt(ctx, buf, 0); err != nil {
				readerErr <- fmt.Errorf("concurrent read %d: %w", i, err)
				return
			}
			if !bytes.Equal(buf, control) {
				readerErr <- fmt.Errorf("concurrent read %d: bytes diverged", i)
				return
			}
		}
	}()
	checkReader := func(when string) {
		select {
		case err := <-readerErr:
			t.Fatalf("%s: %v", when, err)
		default:
		}
	}

	// Grow: 4th daemon joins, every file rebalances onto it.
	added := tc.startDaemon()
	results, err := cl.AddNode(ctx, added)
	if err != nil {
		t.Fatalf("AddNode: %v", err)
	}
	if len(results) != 1 || results[0].Err != nil || !results[0].Result.Moved {
		t.Fatalf("AddNode results = %+v, want one moved file", results)
	}
	grow := results[0].Result
	if grow.BytesMoved == 0 {
		t.Fatal("add-node rebalance reports zero bytes moved — did not run through the redistribution path")
	}
	if grow.FromEpoch != 1 || grow.ToEpoch != 2 {
		t.Fatalf("add-node epochs = %d -> %d, want 1 -> 2", grow.FromEpoch, grow.ToEpoch)
	}
	if got := len(grow.ToNodes); got != 4 {
		t.Fatalf("placement after add-node spans %d nodes, want 4", got)
	}
	checkReader("during add-node")
	readCheck("after add-node")

	// The old client handle (bound at epoch 1) transparently refetches.
	got := make([]byte, size)
	if err := f.ReadAt(ctx, got, 0); err != nil {
		t.Fatalf("stale-handle read after add-node: %v", err)
	}
	if !bytes.Equal(got, control) {
		t.Fatal("stale-handle read diverged after add-node")
	}
	if f.Placement().Epoch != 2 {
		t.Fatalf("stale handle still at epoch %d after refetch", f.Placement().Epoch)
	}

	// Shrink: drain one of the ORIGINAL three — its bytes must move off
	// before the placement commits.
	drained := original[0]
	results, err = cl.DrainNode(ctx, drained)
	if err != nil {
		t.Fatalf("DrainNode: %v", err)
	}
	if len(results) != 1 || results[0].Err != nil || !results[0].Result.Moved || results[0].Result.ToEpoch != 3 {
		t.Fatalf("DrainNode results = %+v, want one move to epoch 3", results)
	}
	for _, n := range results[0].Result.ToNodes {
		if n == drained {
			t.Fatalf("drained node %s still in the new placement", drained)
		}
	}
	checkReader("during drain-node")
	readCheck("after drain-node")

	close(stopReads)
	readerWG.Wait()
	checkReader("at reader shutdown")

	// Now empty, the drained node can be decommissioned — and only now.
	if err := cl.Decommission(ctx, drained); err != nil {
		t.Fatalf("Decommission: %v", err)
	}

	// Writes through the rebalanced placement still verify end-to-end.
	patch := patternBuf(size, 4096)
	if err := f.WriteAt(ctx, patch, size); err != nil {
		t.Fatalf("post-rebalance write: %v", err)
	}
	control = append(control, patch...)
	readCheck("after post-rebalance write")

	// The driver's rebalances are visible in the obs registry and as
	// traced ops — the proof they ran through the instrumented path.
	if n := counterValue(t, tc.reg, "parafile_rebalance_total"); n != 2 {
		t.Fatalf("parafile_rebalance_total = %d, want 2", n)
	}
	if n := counterValue(t, tc.reg, "parafile_rebalance_bytes_moved_total"); n == 0 {
		t.Fatal("parafile_rebalance_bytes_moved_total = 0")
	}
	if tree := tc.tracer.FindOp("rebalance"); tree == nil {
		t.Fatal("no 'rebalance' op in the tracer — the driver span never ran")
	}
	if tree := tc.tracer.FindOp("redistribute"); tree == nil {
		t.Fatal("no 'redistribute' op in the tracer — the move bypassed the redistribution machinery")
	}
}

// TestElasticWriteRaceNeverTorn races writers against the epoch flip:
// each write must land whole in exactly one epoch's store — the fence
// rejects old-epoch writes mid-rebalance with ErrStalePlacement, the
// client refetches and re-issues whole.
func TestElasticWriteRaceNeverTorn(t *testing.T) {
	tc := startElasticCluster(t, 3)
	ctx := context.Background()
	cl := tc.dial()
	defer cl.Close()
	for addr := range tc.daemons {
		if _, err := cl.SetNode(ctx, addr, rpc.NodeActive); err != nil {
			t.Fatal(err)
		}
	}
	const size = 3 * 3 * 1024
	f, err := cl.Create(ctx, "raced", 1024, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := f.WriteAt(ctx, patternBuf(0, size), 0); err != nil {
		t.Fatal(err)
	}

	// Writer goroutine: full-image writes in a tight loop while the
	// membership changes under it. Every attempt writes the SAME bytes,
	// so any torn write (half old placement, half new) would corrupt
	// the read-back.
	stop := make(chan struct{})
	writerErr := make(chan error, 1)
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		img := patternBuf(0, size)
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := f.WriteAt(ctx, img, 0); err != nil {
				writerErr <- err
				return
			}
		}
	}()

	added := tc.startDaemon()
	if _, err := cl.AddNode(ctx, added); err != nil {
		t.Fatalf("AddNode under write load: %v", err)
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-writerErr:
		// The retry loop inside WriteAt must absorb every stale verdict;
		// a surfaced ErrStalePlacement means transparent retry failed.
		t.Fatalf("raced writer surfaced an error: %v", err)
	default:
	}

	r, err := cl.Open(ctx, "raced")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got := make([]byte, size)
	if err := r.ReadAt(ctx, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, patternBuf(0, size)) {
		t.Fatal("raced write tore across the epoch flip")
	}
	if r.Placement().Epoch != 2 {
		t.Fatalf("file at epoch %d after the rebalance, want 2", r.Placement().Epoch)
	}
	// The flip was observed by somebody: either the racing writer hit
	// the fence (stale retries > 0) or its writes all landed before/
	// after — both are legal; torn is not, and that was checked above.
	t.Logf("stale retries absorbed: %d", counterValue(t, tc.reg, "parafile_meta_stale_retries_total"))
}

// counterValue reads one counter from the registry (get-or-create, so
// an untouched counter reads 0).
func counterValue(t *testing.T, reg *obs.Registry, name string) uint64 {
	t.Helper()
	return reg.Counter(name).Value()
}

// TestRebalanceGCSweepsOldStores: once a rebalance commits and the old
// epoch is unfenced, the superseded `name@epoch` stores (and their
// replica siblings) are deleted from the daemons — the counted GC
// sweep — while reads keep working against the new epoch's stores.
func TestRebalanceGCSweepsOldStores(t *testing.T) {
	tc := startElasticCluster(t, 3)
	ctx := context.Background()
	cl := tc.dial()
	defer cl.Close()
	for addr := range tc.daemons {
		if _, err := cl.SetNode(ctx, addr, rpc.NodeActive); err != nil {
			t.Fatal(err)
		}
	}

	const size = 3 * 3 * 4096
	f, err := cl.Create(ctx, "data", 4096, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	want := patternBuf(0, size)
	if err := f.WriteAt(ctx, want, 0); err != nil {
		t.Fatal(err)
	}
	oldStore := f.Placement().StoreName
	oldNodes := append([]string(nil), f.Placement().Nodes...)

	added := tc.startDaemon()
	if _, err := cl.AddNode(ctx, added); err != nil {
		t.Fatalf("AddNode: %v", err)
	}

	if n := counterValue(t, tc.reg, "parafile_meta_gc_total"); n != 1 {
		t.Fatalf("parafile_meta_gc_total = %d, want 1 swept store", n)
	}

	// The old epoch's stores — base and replica — answer unknown-file
	// on every node that held them.
	for _, addr := range oldNodes {
		c := rpc.NewClient(rpc.ClientConfig{Addr: addr, MaxRetries: -1})
		for _, store := range []string{oldStore, clusterfile.ReplicaName(oldStore, 1)} {
			for sub := int64(0); sub < 3; sub++ {
				if _, err := c.Stat(ctx, store, sub); !errors.Is(err, rpc.ErrUnknownFile) {
					t.Errorf("node %s store %q subfile %d: %v, want unknown file (swept)", addr, store, sub, err)
				}
			}
		}
		c.Close()
	}

	// A fresh open reads the new epoch's stores — nothing the sweep
	// removed was still load-bearing.
	r, err := cl.Open(ctx, "data")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got := make([]byte, size)
	if err := r.ReadAt(ctx, got, 0); err != nil {
		t.Fatalf("read after gc: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("bytes diverged after the gc sweep")
	}

	// The pre-rebalance handle (bound to the swept store) refetches on
	// unknown-file and keeps working.
	if err := f.ReadAt(ctx, got, 0); err != nil {
		t.Fatalf("stale-handle read after gc: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("stale-handle bytes diverged after the gc sweep")
	}
}

package meta

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"sync"
	"time"

	"parafile/internal/obs"
	"parafile/internal/rpc"
)

// failover.go is the client's view of a replicated metadata service: a
// set of candidate endpoints, one of which holds the leader lease at
// any moment. Calls go to the endpoint that answered last; a NotLeader
// refusal follows the redirect hint (or rotates when the refusing node
// doesn't know a leader, as during an election), and transport errors
// rotate too. Retries are jittered so a client herd doesn't stampede
// the new leader the instant an election resolves. The mdClient
// presents the same Meta* surface as *rpc.Client, so the FS and the
// rebalance driver are endpoint-count agnostic.

// mdFailoverAttempts bounds one logical metadata call's leader chase.
// With the jittered backoff below this rides out a full election
// (worst case ~2x ElectionTimeoutMax) with margin.
const mdFailoverAttempts = 16

// mdClient fans a single-client call surface over multiple metadata
// endpoints with leader discovery and failover.
type mdClient struct {
	endpoints []string
	template  rpc.ClientConfig

	mu      sync.Mutex
	clients map[string]*rpc.Client
	cur     int // index into endpoints of the last-good node
	rng     *rand.Rand

	backoff      time.Duration
	metFailovers *obs.Counter
}

// newMDClient builds the failover surface over one or more endpoints.
func newMDClient(endpoints []string, template rpc.ClientConfig, reg *obs.Registry) *mdClient {
	if len(endpoints) == 0 {
		endpoints = []string{""}
	}
	m := &mdClient{
		endpoints: endpoints,
		template:  template,
		clients:   make(map[string]*rpc.Client, len(endpoints)),
		rng:       rand.New(rand.NewSource(time.Now().UnixNano())),
		backoff:   25 * time.Millisecond,
	}
	if reg != nil {
		m.metFailovers = reg.Counter("parafile_meta_failovers_total")
	}
	return m
}

// splitEndpoints parses a comma-separated endpoint list.
func splitEndpoints(addr string) []string {
	var out []string
	for _, a := range strings.Split(addr, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

func (m *mdClient) Close() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	var first error
	for _, cl := range m.clients {
		if err := cl.Close(); err != nil && first == nil {
			first = err
		}
	}
	m.clients = make(map[string]*rpc.Client)
	return first
}

// client returns (building if needed) the pooled client for the
// current endpoint.
func (m *mdClient) client() (*rpc.Client, string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	addr := m.endpoints[m.cur]
	cl := m.clients[addr]
	if cl == nil {
		cfg := m.template
		cfg.Addr = addr
		cl = rpc.NewClient(cfg)
		m.clients[addr] = cl
	}
	return cl, addr
}

// failover moves to the hinted leader when one was named (adding it to
// the endpoint set if it is new), otherwise rotates to the next
// candidate.
func (m *mdClient) failover(hint string) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.metFailovers != nil {
		m.metFailovers.Inc()
	}
	if hint != "" {
		for i, a := range m.endpoints {
			if a == hint {
				m.cur = i
				return
			}
		}
		m.endpoints = append(m.endpoints, hint)
		m.cur = len(m.endpoints) - 1
		return
	}
	m.cur = (m.cur + 1) % len(m.endpoints)
}

// do runs fn against the current endpoint, chasing the leader through
// NotLeader redirects and rotating past dead nodes, with jittered
// backoff between attempts so elections can resolve. Remote answers
// other than NotLeader are the service's verdict and return as-is.
func (m *mdClient) do(ctx context.Context, fn func(context.Context, *rpc.Client) error) error {
	var lastErr error
	for attempt := 0; attempt < mdFailoverAttempts; attempt++ {
		if attempt > 0 {
			// Full jitter: herds arriving mid-election spread out
			// instead of slamming the winner on the same tick.
			d := m.backoff << uint(attempt-1)
			if d > 500*time.Millisecond {
				d = 500 * time.Millisecond
			}
			m.mu.Lock()
			d = time.Duration(m.rng.Int63n(int64(d)) + int64(m.backoff))
			m.mu.Unlock()
			select {
			case <-ctx.Done():
				return lastErr
			case <-time.After(d):
			}
		}
		cl, _ := m.client()
		err := fn(ctx, cl)
		if err == nil {
			return nil
		}
		lastErr = err
		var re *rpc.RemoteError
		if errors.As(err, &re) {
			if re.Code == rpc.ErrCodeNotLeader {
				m.failover(re.Leader)
				continue
			}
			// A real answer from a serving leader — not a failover
			// condition.
			return err
		}
		if ctx.Err() != nil {
			return lastErr
		}
		// Transport-level failure: the node may be down, try the next.
		m.failover("")
	}
	return lastErr
}

// ---- the *rpc.Client surface the FS and rebalance driver use ----

func (m *mdClient) MetaCreate(ctx context.Context, req *rpc.MetaCreateReq) (*rpc.MetaFile, error) {
	var out *rpc.MetaFile
	err := m.do(ctx, func(ctx context.Context, cl *rpc.Client) error {
		f, err := cl.MetaCreate(ctx, req)
		if err != nil {
			return err
		}
		out = f
		return nil
	})
	return out, err
}

func (m *mdClient) MetaOpen(ctx context.Context, name string) (*rpc.MetaFile, error) {
	var out *rpc.MetaFile
	err := m.do(ctx, func(ctx context.Context, cl *rpc.Client) error {
		f, err := cl.MetaOpen(ctx, name)
		if err != nil {
			return err
		}
		out = f
		return nil
	})
	return out, err
}

func (m *mdClient) MetaList(ctx context.Context) ([]*rpc.MetaFile, error) {
	var out []*rpc.MetaFile
	err := m.do(ctx, func(ctx context.Context, cl *rpc.Client) error {
		fs, err := cl.MetaList(ctx)
		if err != nil {
			return err
		}
		out = fs
		return nil
	})
	return out, err
}

func (m *mdClient) MetaRemove(ctx context.Context, name string) error {
	return m.do(ctx, func(ctx context.Context, cl *rpc.Client) error {
		return cl.MetaRemove(ctx, name)
	})
}

func (m *mdClient) MetaCommit(ctx context.Context, req *rpc.MetaCommitReq) (*rpc.MetaFile, error) {
	var out *rpc.MetaFile
	err := m.do(ctx, func(ctx context.Context, cl *rpc.Client) error {
		f, err := cl.MetaCommit(ctx, req)
		if err != nil {
			return err
		}
		out = f
		return nil
	})
	return out, err
}

func (m *mdClient) MetaExtend(ctx context.Context, name string, length int64) (*rpc.MetaFile, error) {
	var out *rpc.MetaFile
	err := m.do(ctx, func(ctx context.Context, cl *rpc.Client) error {
		f, err := cl.MetaExtend(ctx, name, length)
		if err != nil {
			return err
		}
		out = f
		return nil
	})
	return out, err
}

func (m *mdClient) MetaNodes(ctx context.Context) ([]rpc.MetaNode, error) {
	var out []rpc.MetaNode
	err := m.do(ctx, func(ctx context.Context, cl *rpc.Client) error {
		ns, err := cl.MetaNodes(ctx)
		if err != nil {
			return err
		}
		out = ns
		return nil
	})
	return out, err
}

func (m *mdClient) MetaNodeSet(ctx context.Context, addr string, state byte) ([]rpc.MetaNode, error) {
	var out []rpc.MetaNode
	err := m.do(ctx, func(ctx context.Context, cl *rpc.Client) error {
		ns, err := cl.MetaNodeSet(ctx, addr, state)
		if err != nil {
			return err
		}
		out = ns
		return nil
	})
	return out, err
}

// MetaStatus asks the current endpoint for its replication view; any
// node answers (leader or not), so this does not chase the lease —
// only transport failures rotate.
func (m *mdClient) MetaStatus(ctx context.Context) (*rpc.MetaStatusInfo, error) {
	var out *rpc.MetaStatusInfo
	err := m.do(ctx, func(ctx context.Context, cl *rpc.Client) error {
		st, err := cl.MetaStatus(ctx)
		if err != nil {
			return err
		}
		out = st
		return nil
	})
	return out, err
}

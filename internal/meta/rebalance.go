package meta

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"parafile/internal/clusterfile"
	"parafile/internal/rpc"
)

// defaultRebalanceWorkers bounds concurrent per-file rebalances in
// RebalanceAll when Options.RebalanceWorkers is zero. Each file's move
// is independent (its own fence, union transport, and CAS commit), so
// a small pool overlaps transfer time without flooding the daemons.
const defaultRebalanceWorkers = 4

// rebalance.go drives online placement changes as paper
// redistributions. A file laid out over its old node set is one
// distribution MAP_old; the placement the current membership implies
// is another, MAP_new. Moving the bytes is exactly the paper's
// redistribution MAP_new ∘ MAP⁻¹_old, so the driver reuses the
// existing stage-then-commit machinery over a union cluster spanning
// both node sets:
//
//  1. fence the old store at its epoch — writes at the old epoch are
//     rejected with ErrStalePlacement, reads keep flowing;
//  2. gather/scatter the bytes into a fresh per-epoch store on the
//     target nodes (staged, then committed atomically per node);
//  3. CAS-commit the new placement map at the metadata service — the
//     one point where the file flips epochs;
//  4. ratchet the old store to the new epoch and unfence — clients
//     still holding the old map now get ErrStalePlacement on any
//     access and refetch.
//
// A crash before step 3 leaves the committed map untouched (the new
// store is garbage, the old one is merely fenced and recoverable); a
// crash after step 3 leaves stale clients to refetch on first error.

// RebalanceResult reports one file's rebalance.
type RebalanceResult struct {
	// File is the committed placement map (nil when Moved is false).
	File *rpc.MetaFile
	// Moved is false when the placement already matched the active
	// membership and nothing happened.
	Moved bool
	// FromEpoch/ToEpoch bracket the flip.
	FromEpoch, ToEpoch uint64
	// FromNodes/ToNodes are the old and new placement node sets.
	FromNodes, ToNodes []string
	// BytesMoved and Messages count the inter-node redistribution
	// traffic; Subfiles is the new subfile count.
	BytesMoved int64
	Messages   int
	Subfiles   int
	// Wall is the end-to-end driver time.
	Wall time.Duration
}

// Rebalance moves one file onto the current active membership. It is
// a no-op (Moved=false) when the placement already matches. Reads are
// served from the old epoch for the whole move; the commit is a CAS
// on the file's epoch, so concurrent rebalances of one file cannot
// both win.
func (fs *FS) Rebalance(ctx context.Context, name string) (*RebalanceResult, error) {
	start := time.Now()
	mf, err := fs.md.MetaOpen(ctx, name)
	if err != nil {
		return nil, err
	}
	target, err := fs.activeNodes(ctx)
	if err != nil {
		return nil, err
	}
	if sameNodes(mf.Nodes, target) {
		return &RebalanceResult{Moved: false, FromEpoch: mf.Epoch, ToEpoch: mf.Epoch,
			FromNodes: mf.Nodes, ToNodes: target}, nil
	}
	if len(target) == 0 {
		return nil, errors.New("meta: no active nodes to rebalance onto")
	}
	if mf.Replication > len(target) {
		return nil, fmt.Errorf("meta: %q needs %d nodes for replication, only %d active",
			name, mf.Replication, len(target))
	}

	var span interface{ Fail() } = noSpan
	if tr := fs.opts.Tracer; tr != nil {
		s := tr.StartOp("rebalance")
		defer tr.FinishOp(s)
		span = s
	}

	res, err := fs.rebalanceOnce(ctx, mf, target)
	if err != nil {
		span.Fail()
		return nil, err
	}
	res.Wall = time.Since(start)
	if fs.metRebalances != nil {
		fs.metRebalances.Inc()
		fs.metRebalanced.Add(res.BytesMoved)
	}
	if fs.opts.Log != nil {
		fs.opts.Log.Info("rebalance", "file", name,
			"from_epoch", res.FromEpoch, "to_epoch", res.ToEpoch,
			"from_nodes", len(res.FromNodes), "to_nodes", len(res.ToNodes),
			"bytes_moved", res.BytesMoved, "wall", res.Wall)
	}
	return res, nil
}

// rebalanceOnce runs the fence → redistribute → CAS-commit → unfence
// sequence for one placement change.
func (fs *FS) rebalanceOnce(ctx context.Context, mf *rpc.MetaFile, target []string) (*RebalanceResult, error) {
	union, index := unionNodes(mf.Nodes, target)
	tr, err := rpc.NewTransport(union, fs.transportOptions())
	if err != nil {
		return nil, err
	}
	defer tr.Close()
	cluster, err := clusterfile.New(fs.clusterConfig(len(union), tr))
	if err != nil {
		return nil, err
	}

	newEpoch := mf.Epoch + 1
	// Under a replicated metadata group every epoch minted in leader
	// term T must clear the floor T<<epochTermShift: the daemons'
	// epoch ratchet then fences a deposed leader's driver (staging at a
	// lower epoch) out of the data path with no daemon-side changes.
	// The commit re-validates against the floor, so a term that moves
	// mid-rebalance fails the CAS instead of committing stale.
	if st, err := fs.md.MetaStatus(ctx); err == nil {
		if floor := st.Term << epochTermShift; newEpoch < floor {
			newEpoch = floor
		}
	}
	newStore := fmt.Sprintf("%s@%d", mf.Name, newEpoch)
	newAssign := make([]int, len(target))
	for i := range newAssign {
		newAssign[i] = i
	}
	newMF := &rpc.MetaFile{
		Name:        mf.Name,
		StripeBytes: mf.StripeBytes,
		Replication: mf.Replication,
		Epoch:       newEpoch,
		StoreName:   newStore,
		Nodes:       target,
		Assign:      newAssign,
	}
	newPhys, err := stripePattern(len(target), mf.StripeBytes)
	if err != nil {
		return nil, err
	}
	newRows := unionRows(newMF, index)

	// Fence the old store at its current epoch: in-flight and new
	// writes stamped with the old epoch bounce with ErrStalePlacement
	// from here to the commit; epoch-matched reads keep flowing.
	if err := tr.SetEpoch(ctx, mf.StoreName, mf.Epoch, true); err != nil {
		return nil, fmt.Errorf("meta: fencing %q at epoch %d: %w", mf.StoreName, mf.Epoch, err)
	}
	unfenceOld := func(epoch uint64) {
		// Best-effort: a node that misses the unfence keeps answering
		// stale, which clients already handle by refetching.
		_ = tr.SetEpoch(ctx, mf.StoreName, epoch, false)
	}

	res := &RebalanceResult{
		File: newMF, Moved: true,
		FromEpoch: mf.Epoch, ToEpoch: newEpoch,
		FromNodes: mf.Nodes, ToNodes: target,
		Subfiles: len(target),
	}

	if mf.Length > 0 {
		oldPhys, err := stripePattern(len(mf.Assign), mf.StripeBytes)
		if err != nil {
			unfenceOld(mf.Epoch)
			return nil, err
		}
		// The driver opens the old store UNSTAMPED (epoch 0): the fence
		// must reject epoch-stamped client writes, but the copy's own
		// source-side operations — sparse grows so holes gather as
		// zeroes, then the gathers themselves — are the rebalance, and
		// unstamped requests pass the epoch check by design.
		oldFile, err := cluster.CreateFilePlacementCtx(ctx, mf.StoreName, oldPhys,
			remapRows(placementRows(mf), mf.Nodes, index), 0)
		if err != nil {
			unfenceOld(mf.Epoch)
			return nil, fmt.Errorf("meta: opening %q for rebalance: %w", mf.StoreName, err)
		}
		_, op, err := cluster.StartRedistributePlacementCtx(ctx, oldFile, newStore,
			newPhys, newRows, newEpoch, mf.Length)
		if err != nil {
			unfenceOld(mf.Epoch)
			return nil, fmt.Errorf("meta: starting redistribution: %w", err)
		}
		cluster.RunAll()
		if op.Err != nil {
			unfenceOld(mf.Epoch)
			return nil, fmt.Errorf("meta: redistributing %q: %w", mf.Name, op.Err)
		}
		res.BytesMoved = op.Stats.Bytes
		res.Messages = op.Stats.Messages
	} else {
		// Nothing to copy — still materialise the (empty) new store so
		// the first post-flip open finds it at the new epoch.
		if _, err := cluster.CreateFilePlacementCtx(ctx, newStore, newPhys, newRows, newEpoch); err != nil {
			unfenceOld(mf.Epoch)
			return nil, fmt.Errorf("meta: creating %q: %w", newStore, err)
		}
	}

	committed, err := fs.md.MetaCommit(ctx, &rpc.MetaCommitReq{
		Name:      mf.Name,
		OldEpoch:  mf.Epoch,
		NewEpoch:  newEpoch,
		StoreName: newStore,
		Nodes:     target,
		Assign:    newAssign,
	})
	if err != nil {
		// CAS lost (or the service is gone): the committed map still
		// points at the old store, so restore it to service.
		unfenceOld(mf.Epoch)
		return nil, fmt.Errorf("meta: committing epoch %d for %q: %w", newEpoch, mf.Name, err)
	}
	res.File = committed
	res.ToEpoch = committed.Epoch

	// Ratchet the old store past the flip and unfence: lingering
	// old-epoch clients now get ErrStalePlacement on reads and writes
	// alike, refetch the map, and land on the new store.
	unfenceOld(committed.Epoch)

	// GC the superseded generation: the committed map points at the
	// new store, so the old name@epoch stores (replicas included) on
	// the old placement are dead weight — close them and delete their
	// backing data. Best-effort by design: a node that misses the
	// sweep keeps an orphaned store whose stale readers see
	// unknown-file and refetch, and the next rebalance of the file
	// sweeps again.
	if err := tr.RemoveStore(ctx, mf.StoreName); err != nil {
		if fs.opts.Log != nil {
			fs.opts.Log.Warn("rebalance gc", "file", mf.Name, "store", mf.StoreName, "err", err)
		}
	} else {
		if fs.metGC != nil {
			fs.metGC.Inc()
		}
		if fs.opts.Log != nil {
			fs.opts.Log.Info("rebalance gc", "file", mf.Name, "store", mf.StoreName,
				"nodes", len(mf.Nodes))
		}
	}
	return res, nil
}

// RebalanceOutcome is one file's result from a namespace-wide
// rebalance: either a result or the error that stopped that file.
// Each file's move is all-or-nothing on its own (fence → copy → CAS →
// unfence), so one file failing leaves every other file either moved
// or untouched — never half-moved.
type RebalanceOutcome struct {
	Name   string
	Result *RebalanceResult // nil when Err is set
	Err    error
}

// Failed counts the outcomes that errored.
func Failed(outcomes []*RebalanceOutcome) int {
	n := 0
	for _, o := range outcomes {
		if o.Err != nil {
			n++
		}
	}
	return n
}

// RebalanceAll rebalances every file in the namespace onto the current
// active membership through a bounded worker pool. It does not stop at
// the first failure: every file is attempted and the outcomes come
// back in name order, failures attached to the file they belong to.
// The returned error is non-nil only when the namespace itself could
// not be listed.
func (fs *FS) RebalanceAll(ctx context.Context) ([]*RebalanceOutcome, error) {
	files, err := fs.md.MetaList(ctx)
	if err != nil {
		return nil, err
	}
	workers := fs.opts.RebalanceWorkers
	if workers <= 0 {
		workers = defaultRebalanceWorkers
	}
	if workers > len(files) {
		workers = len(files)
	}
	outcomes := make([]*RebalanceOutcome, len(files))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, mf := range files {
		i, name := i, mf.Name
		wg.Add(1)
		sem <- struct{}{}
		go func() {
			defer func() { <-sem; wg.Done() }()
			res, err := fs.Rebalance(ctx, name)
			if err != nil {
				err = fmt.Errorf("meta: rebalancing %q: %w", name, err)
			}
			outcomes[i] = &RebalanceOutcome{Name: name, Result: res, Err: err}
		}()
	}
	wg.Wait()
	return outcomes, nil
}

// AddNode registers addr as an active data node and rebalances the
// namespace onto the grown membership.
func (fs *FS) AddNode(ctx context.Context, addr string) ([]*RebalanceOutcome, error) {
	if _, err := fs.md.MetaNodeSet(ctx, addr, rpc.NodeActive); err != nil {
		return nil, err
	}
	return fs.RebalanceAll(ctx)
}

// DrainNode marks addr draining — excluded from new placements — and
// rebalances every file off it.
func (fs *FS) DrainNode(ctx context.Context, addr string) ([]*RebalanceOutcome, error) {
	if _, err := fs.md.MetaNodeSet(ctx, addr, rpc.NodeDraining); err != nil {
		return nil, err
	}
	return fs.RebalanceAll(ctx)
}

// Decommission removes a drained node. The service refuses unless the
// node is draining and no file's placement still references it.
func (fs *FS) Decommission(ctx context.Context, addr string) error {
	_, err := fs.md.MetaNodeSet(ctx, addr, rpc.NodeRemoved)
	return err
}

// activeNodes returns the membership's active node addresses in
// registration order.
func (fs *FS) activeNodes(ctx context.Context) ([]string, error) {
	nodes, err := fs.md.MetaNodes(ctx)
	if err != nil {
		return nil, err
	}
	var active []string
	for _, n := range nodes {
		if n.State == rpc.NodeActive {
			active = append(active, n.Addr)
		}
	}
	return active, nil
}

func sameNodes(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// unionNodes merges old and new node sets preserving first-seen order
// and returns the address → union-index map the placement rows need.
func unionNodes(old, next []string) ([]string, map[string]int) {
	index := make(map[string]int, len(old)+len(next))
	var union []string
	for _, set := range [][]string{old, next} {
		for _, addr := range set {
			if _, ok := index[addr]; !ok {
				index[addr] = len(union)
				union = append(union, addr)
			}
		}
	}
	return union, index
}

// unionRows expands mf's placement into rows of union-cluster indices.
func unionRows(mf *rpc.MetaFile, index map[string]int) [][]int {
	return remapRows(placementRows(mf), mf.Nodes, index)
}

// remapRows translates rows of placement-local node indices into
// union-cluster indices.
func remapRows(rows [][]int, nodes []string, index map[string]int) [][]int {
	out := make([][]int, len(rows))
	for r, row := range rows {
		out[r] = make([]int, len(row))
		for s, local := range row {
			out[r][s] = index[nodes[local]]
		}
	}
	return out
}

// noSpan is the nil-tracer stand-in so the driver can Fail()
// unconditionally.
var noSpan = &nilSpan{}

type nilSpan struct{}

func (*nilSpan) Fail() {}

package meta

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"parafile/internal/obs"
	"parafile/internal/rpc"
)

// startTestService runs a Store + Service on a loopback port and
// returns a connected client.
func startTestService(t *testing.T) (*rpc.Client, *Store) {
	t.Helper()
	st, err := OpenStore(t.TempDir(), StoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	svc := NewService(ServiceConfig{Store: st, Metrics: obs.NewRegistry()})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go svc.Serve(ln)
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		defer cancel()
		svc.Shutdown(ctx)
	})
	cl := rpc.NewClient(rpc.ClientConfig{Addr: ln.Addr().String(), Placement: true})
	t.Cleanup(func() { cl.Close() })
	return cl, st
}

func TestServiceNamespaceOverTCP(t *testing.T) {
	cl, st := startTestService(t)
	ctx := context.Background()

	// Create with no registered data nodes is refused.
	if _, err := cl.MetaCreate(ctx, &rpc.MetaCreateReq{Name: "early"}); err == nil {
		t.Fatal("create with no active nodes succeeded")
	}
	if _, err := cl.MetaNodeSet(ctx, "n1:1", rpc.NodeActive); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.MetaNodeSet(ctx, "n2:1", rpc.NodeActive); err != nil {
		t.Fatal(err)
	}

	f, err := cl.MetaCreate(ctx, &rpc.MetaCreateReq{Name: "data", Replication: 2})
	if err != nil {
		t.Fatalf("MetaCreate: %v", err)
	}
	if f.Epoch != 1 || f.StripeBytes != DefaultStripeBytes || len(f.Nodes) != 2 || len(f.Assign) != 2 {
		t.Fatalf("created record = %+v", f)
	}
	if _, err := cl.MetaCreate(ctx, &rpc.MetaCreateReq{Name: "data"}); err == nil {
		t.Fatal("duplicate create succeeded")
	}
	if _, err := cl.MetaCreate(ctx, &rpc.MetaCreateReq{Name: "wide", Replication: 3}); err == nil {
		t.Fatal("replication wider than membership succeeded")
	}

	got, err := cl.MetaOpen(ctx, "data")
	if err != nil || got.Name != "data" || got.Epoch != 1 {
		t.Fatalf("MetaOpen: %+v, %v", got, err)
	}
	if _, err := cl.MetaOpen(ctx, "ghost"); !errors.Is(err, rpc.ErrUnknownFile) {
		t.Fatalf("open of absent name: got %v, want ErrUnknownFile", err)
	}

	if ext, err := cl.MetaExtend(ctx, "data", 4096); err != nil || ext.Length != 4096 {
		t.Fatalf("MetaExtend: %+v, %v", ext, err)
	}

	files, err := cl.MetaList(ctx)
	if err != nil || len(files) != 1 || files[0].Length != 4096 {
		t.Fatalf("MetaList: %+v, %v", files, err)
	}
	nodes, err := cl.MetaNodes(ctx)
	if err != nil || len(nodes) != 2 {
		t.Fatalf("MetaNodes: %+v, %v", nodes, err)
	}

	if err := cl.MetaRemove(ctx, "data"); err != nil {
		t.Fatalf("MetaRemove: %v", err)
	}
	if files, err := cl.MetaList(ctx); err != nil || len(files) != 0 {
		t.Fatalf("MetaList after remove: %+v, %v", files, err)
	}
	_ = st
}

func TestServiceCommitCASOverTCP(t *testing.T) {
	cl, _ := startTestService(t)
	ctx := context.Background()
	if _, err := cl.MetaNodeSet(ctx, "n1:1", rpc.NodeActive); err != nil {
		t.Fatal(err)
	}
	if _, err := cl.MetaCreate(ctx, &rpc.MetaCreateReq{Name: "f"}); err != nil {
		t.Fatal(err)
	}
	next, err := cl.MetaCommit(ctx, &rpc.MetaCommitReq{
		Name: "f", OldEpoch: 1, StoreName: "f@2", Nodes: []string{"n1:1"}, Assign: []int{0},
	})
	if err != nil || next.Epoch != 2 || next.StoreName != "f@2" {
		t.Fatalf("MetaCommit: %+v, %v", next, err)
	}
	// The losing driver of a racing rebalance gets the typed stale
	// error over the wire.
	_, err = cl.MetaCommit(ctx, &rpc.MetaCommitReq{
		Name: "f", OldEpoch: 1, StoreName: "f@2b", Nodes: []string{"n1:1"}, Assign: []int{0},
	})
	if !errors.Is(err, rpc.ErrStalePlacement) {
		t.Fatalf("losing CAS: got %v, want ErrStalePlacement", err)
	}
}

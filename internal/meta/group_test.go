package meta

import (
	"context"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"parafile/internal/obs"
	"parafile/internal/rpc"
)

// group_test.go spins real 3-node replication groups over TCP
// loopback: stores, groups and services in-process, clients dialed
// with the full endpoint list. Timeouts are shrunk so elections
// resolve in tens of milliseconds.

type groupNode struct {
	addr  string
	store *Store
	group *Group
	svc   *Service
	ln    net.Listener
	reg   *obs.Registry
}

type groupCluster struct {
	t     *testing.T
	nodes []*groupNode
	addrs []string
}

const (
	testHeartbeat   = 25 * time.Millisecond
	testElectionMin = 150 * time.Millisecond
	testLease       = 100 * time.Millisecond
)

func startGroupCluster(t *testing.T, n int) *groupCluster {
	t.Helper()
	gc := &groupCluster{t: t}
	listeners := make([]net.Listener, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		listeners[i] = ln
		gc.addrs = append(gc.addrs, ln.Addr().String())
	}
	for i := 0; i < n; i++ {
		gc.nodes = append(gc.nodes, gc.startNode(t.TempDir(), listeners[i], gc.addrs[i]))
	}
	t.Cleanup(gc.stopAll)
	return gc
}

func (gc *groupCluster) startNode(dir string, ln net.Listener, addr string) *groupNode {
	gc.t.Helper()
	reg := obs.NewRegistry()
	store, err := OpenStore(dir, StoreConfig{Metrics: reg})
	if err != nil {
		gc.t.Fatalf("OpenStore: %v", err)
	}
	group, err := NewGroup(GroupConfig{
		Self:               addr,
		Peers:              gc.addrs,
		Store:              store,
		HeartbeatEvery:     testHeartbeat,
		ElectionTimeoutMin: testElectionMin,
		LeaseDuration:      testLease,
		ReplTimeout:        500 * time.Millisecond,
		Metrics:            reg,
	})
	if err != nil {
		gc.t.Fatalf("NewGroup: %v", err)
	}
	svc := NewService(ServiceConfig{Store: store, Metrics: reg, Group: group})
	node := &groupNode{addr: addr, store: store, group: group, svc: svc, ln: ln, reg: reg}
	group.Start()
	go svc.Serve(ln)
	return node
}

func (gc *groupCluster) stopNode(node *groupNode) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
	defer cancel()
	node.svc.Shutdown(ctx)
	node.group.Stop()
	node.store.Close()
}

func (gc *groupCluster) stopAll() {
	for _, n := range gc.nodes {
		if n != nil {
			gc.stopNode(n)
		}
	}
	gc.nodes = nil
}

// waitLeader blocks until exactly one live node holds the lease and
// returns it.
func (gc *groupCluster) waitLeader(exclude ...*groupNode) *groupNode {
	gc.t.Helper()
	skip := map[*groupNode]bool{}
	for _, n := range exclude {
		skip[n] = true
	}
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		var leader *groupNode
		for _, n := range gc.nodes {
			if n == nil || skip[n] {
				continue
			}
			if n.group.IsLeader() {
				leader = n
			}
		}
		if leader != nil {
			return leader
		}
		time.Sleep(10 * time.Millisecond)
	}
	gc.t.Fatal("no leader elected within 5s")
	return nil
}

func (gc *groupCluster) dial(reg *obs.Registry) *FS {
	eps := ""
	for i, a := range gc.addrs {
		if i > 0 {
			eps += ","
		}
		eps += a
	}
	fs := Dial(eps, Options{Metrics: reg, OpTimeout: 5 * time.Second})
	gc.t.Cleanup(func() { fs.Close() })
	return fs
}

func TestGroupElectsAndReplicates(t *testing.T) {
	gc := startGroupCluster(t, 3)
	leader := gc.waitLeader()
	ctx := context.Background()

	cl := gc.dial(obs.NewRegistry())
	mdSetNode(t, cl, ctx, "d1:1")
	mdCreate(t, cl, ctx, "repl-file")

	// The epoch handed out under term T must clear the fencing floor.
	mf, err := cl.md.MetaOpen(ctx, "repl-file")
	if err != nil {
		t.Fatalf("MetaOpen: %v", err)
	}
	term := leader.group.Status().Term
	if floor := term << epochTermShift; mf.Epoch < floor {
		t.Fatalf("epoch %d below term-%d floor %d — deposed leaders would not be fenced", mf.Epoch, term, floor)
	}

	// Every mutation was quorum-replicated; with all three nodes live
	// the followers converge to the leader's log almost immediately.
	waitConverged(t, gc, "repl-file")

	// Exactly one leaseholder.
	count := 0
	for _, n := range gc.nodes {
		if n.group.IsLeader() {
			count++
		}
	}
	if count != 1 {
		t.Fatalf("%d simultaneous leaseholders, want exactly 1", count)
	}
}

func waitConverged(t *testing.T, gc *groupCluster, name string) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for time.Now().Before(deadline) {
		n := 0
		for _, node := range gc.nodes {
			if node == nil {
				continue
			}
			if _, err := node.store.Get(name); err == nil {
				n++
			}
		}
		if n == len(gc.nodes) {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	for i, node := range gc.nodes {
		if node == nil {
			continue
		}
		_, err := node.store.Get(name)
		t.Logf("node %d (%s): Get(%q) = %v, tail=%v", i, node.addr, name, err,
			node.store.EpochFloor())
	}
	t.Fatalf("%q did not replicate to every node", name)
}

func TestGroupFailoverOnLeaderKill(t *testing.T) {
	gc := startGroupCluster(t, 3)
	leader := gc.waitLeader()
	ctx := context.Background()

	reg := obs.NewRegistry()
	cl := gc.dial(reg)
	mdSetNode(t, cl, ctx, "d1:1")
	mdCreate(t, cl, ctx, "survivor")
	oldTerm := leader.group.Status().Term

	// Kill the leader outright — no resign, no drain.
	for i, n := range gc.nodes {
		if n == leader {
			gc.nodes[i] = nil
		}
	}
	leader.ln.Close()
	ctxKill, cancel := context.WithTimeout(context.Background(), time.Second)
	leader.svc.Shutdown(ctxKill)
	cancel()
	leader.group.Stop()
	leader.store.Close()

	// A follower must take over at a higher term.
	next := gc.waitLeader()
	if next.addr == leader.addr {
		t.Fatal("dead leader still leading")
	}
	if got := next.group.Status().Term; got <= oldTerm {
		t.Fatalf("failover term %d did not advance past %d", got, oldTerm)
	}

	// The same client keeps working against the survivors: the stale
	// endpoint is rotated past, the namespace is intact, and new
	// mutations replicate to the remaining quorum.
	mf, err := cl.md.MetaOpen(ctx, "survivor")
	if err != nil {
		t.Fatalf("Stat after failover: %v", err)
	}
	if mf.Name != "survivor" {
		t.Fatalf("Stat after failover returned %q", mf.Name)
	}
	mdSetNode(t, cl, ctx, "d2:1")
	mdCreate(t, cl, ctx, "post-failover")
}

// TestGroupElectionWindowBlocksNeverStale is the client-visible lease
// guarantee: operations issued while no one holds the lease block and
// retry inside the op timeout, and no request is ever answered from a
// node without the lease — so a read can never observe a rolled-back
// namespace, only wait out the election.
func TestGroupElectionWindowBlocksNeverStale(t *testing.T) {
	gc := startGroupCluster(t, 3)
	leader := gc.waitLeader()
	ctx := context.Background()

	cl := gc.dial(obs.NewRegistry())
	mdSetNode(t, cl, ctx, "d1:1")
	mdCreate(t, cl, ctx, "during-election")
	if _, err := cl.md.MetaExtend(ctx, "during-election", 8192); err != nil {
		t.Fatalf("Extend: %v", err)
	}

	// Suspend the leader's heartbeats: its lease lapses, the group is
	// leaderless until a follower's election timeout fires. Requests
	// in that window must redirect/retry — never be answered stale.
	leader.group.suspendHeartbeats(true)
	time.Sleep(testLease + 10*time.Millisecond) // let the lease lapse

	// The lapsed leader itself refuses immediately.
	direct := rpc.NewClient(rpc.ClientConfig{Addr: leader.addr, MaxRetries: 1})
	_, derr := direct.MetaOpen(ctx, "during-election")
	direct.Close()
	if !leader.group.IsLeader() && !errors.Is(derr, rpc.ErrNotLeader) {
		t.Fatalf("lapsed leader answered %v, want NotLeader refusal", derr)
	}

	// The failover client blocks through the election and then answers
	// with the committed state.
	start := time.Now()
	mf, err := cl.md.MetaOpen(ctx, "during-election")
	if err != nil {
		t.Fatalf("Stat during election window: %v", err)
	}
	if mf.Length != 8192 {
		t.Fatalf("stale read through election: length %d, want 8192", mf.Length)
	}
	t.Logf("stat during election window took %v", time.Since(start))

	leader.group.suspendHeartbeats(false)
	gc.waitLeader()
}

// The helpers below drive metadata-only mutations through the FS's
// failover client: full FS.Create/Write would dial data daemons,
// which these tests don't run.
func mdSetNode(t *testing.T, cl *FS, ctx context.Context, addr string) {
	t.Helper()
	if _, err := cl.md.MetaNodeSet(ctx, addr, rpc.NodeActive); err != nil {
		t.Fatalf("MetaNodeSet(%s): %v", addr, err)
	}
}

func mdCreate(t *testing.T, cl *FS, ctx context.Context, name string) *rpc.MetaFile {
	t.Helper()
	mf, err := cl.md.MetaCreate(ctx, &rpc.MetaCreateReq{Name: name, StripeBytes: 4096, Replication: 1})
	if err != nil {
		t.Fatalf("MetaCreate(%s): %v", name, err)
	}
	return mf
}

// TestGroupDeposedLeaderCommitFenced: a commit staged under an old
// term must be refused once a new leader (higher term, higher epoch
// floor) has taken over — the metadata half of the fence; daemon-side
// epoch ratcheting is covered by the elasticity tests.
func TestGroupDeposedLeaderCommitFenced(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	st, err := OpenStore(dir, StoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	// Created and committed under term 1.
	st.SetTerm(1)
	if err := st.Create(ctx, testFile("fenced", 1, "n1:1")); err != nil {
		t.Fatal(err)
	}
	mf, err := st.Get("fenced")
	if err != nil {
		t.Fatal(err)
	}

	// A driver staged daemon stores under term 1's floor...
	stagedEpoch := mf.Epoch + 1

	// ...but an election moved the group to term 2 before the commit.
	st.SetTerm(2)
	_, err = st.Commit(ctx, &rpc.MetaCommitReq{
		Name: "fenced", OldEpoch: mf.Epoch, NewEpoch: stagedEpoch,
		StoreName: "fenced@stale", Nodes: []string{"n1:1"}, Assign: []int{0},
	})
	if !errors.Is(err, ErrStaleEpoch) {
		t.Fatalf("deposed-leader commit: got %v, want ErrStaleEpoch", err)
	}

	// Re-staged at the new floor, the same commit goes through.
	_, err = st.Commit(ctx, &rpc.MetaCommitReq{
		Name: "fenced", OldEpoch: mf.Epoch, NewEpoch: uint64(2) << epochTermShift,
		StoreName: "fenced@fresh", Nodes: []string{"n1:1"}, Assign: []int{0},
	})
	if err != nil {
		t.Fatalf("re-staged commit at the new floor: %v", err)
	}
}

// TestGroupFollowerRepairBySnapshot: a follower that missed entries
// (here: started empty after the others committed) is repaired by
// full-state snapshot install and converges.
func TestGroupFollowerRepair(t *testing.T) {
	gc := startGroupCluster(t, 3)
	gc.waitLeader()
	ctx := context.Background()

	cl := gc.dial(obs.NewRegistry())
	mdSetNode(t, cl, ctx, "d1:1")
	for i := 0; i < 5; i++ {
		mdCreate(t, cl, ctx, fmt.Sprintf("file-%d", i))
	}
	for i := 0; i < 5; i++ {
		waitConverged(t, gc, fmt.Sprintf("file-%d", i))
	}
}

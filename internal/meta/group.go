// group.go is the replication layer of the metadata service: a
// leader-based group of 2f+1 parafilemd processes that ships the
// store's namespace log to a quorum before a mutation is acked.
//
// The protocol is a deliberately small Raft subset. Elections use
// persisted (term, votedFor) ballots with the standard up-to-date log
// check; the winner's term becomes the store term, which sets the
// epoch floor (term<<epochTermShift) that fences deposed leaders out
// of the data path. Log shipping tracks only the tail: a follower
// whose tail does not match the leader's prev position nacks, and the
// leader repairs it with a full-state snapshot install instead of
// walking per-index history (the namespace is small; state transfer
// is the repair path). Leadership is a time-bounded lease: a leader
// serves namespace reads and accepts mutations only while a quorum
// acked a round less than LeaseDuration ago, and voters refuse
// ballots while they believe a live leader holds the lease, so the
// lease window can never contain two leaders.
package meta

import (
	"context"
	"fmt"
	"log/slog"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"parafile/internal/fault"
	"parafile/internal/obs"
	"parafile/internal/rpc"
)

// Group roles. Kept in an atomic so the hot paths (lease checks on
// every namespace request) never take the group lock.
const (
	roleFollower int32 = iota
	roleCandidate
	roleLeader
)

// GroupConfig configures one member of a metadata replication group.
type GroupConfig struct {
	// Self is this node's advertised address; it must appear in Peers.
	Self string
	// Peers is the full group membership including Self. A single-entry
	// group runs standalone: it elects itself immediately and every
	// quorum is satisfied locally.
	Peers []string
	// Store is the local crash-safe namespace store. The group installs
	// itself as the store's replicator.
	Store *Store
	// HeartbeatEvery is the leader's lease-renewal cadence (default
	// 150ms).
	HeartbeatEvery time.Duration
	// ElectionTimeoutMin/Max bound the randomized follower timeout
	// before campaigning (defaults 500ms / 1s). Min must exceed
	// LeaseDuration or a lapsed lease could coexist with a fresh
	// election elsewhere.
	ElectionTimeoutMin time.Duration
	ElectionTimeoutMax time.Duration
	// LeaseDuration is how long a quorum-acked round entitles the
	// leader to serve (default 400ms).
	LeaseDuration time.Duration
	// ReplTimeout bounds one replication or ballot round (default 1s).
	ReplTimeout time.Duration

	Metrics *obs.Registry
	Log     *slog.Logger
	// Fault fires fault.OpMetaReplicate once per replication round and
	// fault.OpMetaVote once per campaign, node 0.
	Fault *fault.Injector

	// Client templates the per-peer RPC clients (Addr is overridden).
	// Zero value works; timeouts default to ReplTimeout.
	Client rpc.ClientConfig
}

// Group is one member's view of the replication group.
type Group struct {
	cfg    GroupConfig
	st     *Store
	quorum int

	role       atomic.Int32
	term       atomic.Uint64
	leader     atomic.Value // string: believed leaseholder address
	leaseUntil atomic.Int64 // unix nanos; leader-only
	lastQuorum atomic.Int64 // unix nanos of last quorum-acked round
	lastHeard  atomic.Int64 // unix nanos of last valid leader contact
	electAt    atomic.Int64 // unix nanos; follower campaign deadline
	suspended  atomic.Bool  // test hook: leader stops heartbeating

	// mu serializes term/role/vote transitions. Never held while
	// waiting on the network, and never taken by the store-lock-holding
	// replicate path (which defers step-downs to a goroutine instead).
	mu       sync.Mutex
	votedFor string
	rng      *rand.Rand

	peers     map[string]*rpc.Client // excludes self
	repairing sync.Map               // addr -> struct{}: one repair in flight per peer

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup

	metTerm      *obs.Gauge
	metLag       *obs.Gauge
	metElections *obs.Counter
	metStepDowns *obs.Counter
	metRepairs   *obs.Counter
}

// NewGroup builds a group member. Call Start to join the group and
// Stop to leave; the group owns the peer connections.
func NewGroup(cfg GroupConfig) (*Group, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("meta: group needs a store")
	}
	if cfg.Self == "" {
		return nil, fmt.Errorf("meta: group needs a self address")
	}
	if cfg.HeartbeatEvery <= 0 {
		cfg.HeartbeatEvery = 150 * time.Millisecond
	}
	if cfg.ElectionTimeoutMin <= 0 {
		cfg.ElectionTimeoutMin = 500 * time.Millisecond
	}
	if cfg.ElectionTimeoutMax <= cfg.ElectionTimeoutMin {
		cfg.ElectionTimeoutMax = 2 * cfg.ElectionTimeoutMin
	}
	if cfg.LeaseDuration <= 0 {
		cfg.LeaseDuration = 400 * time.Millisecond
	}
	if cfg.LeaseDuration >= cfg.ElectionTimeoutMin {
		return nil, fmt.Errorf("meta: lease %v must be shorter than election timeout %v",
			cfg.LeaseDuration, cfg.ElectionTimeoutMin)
	}
	if cfg.ReplTimeout <= 0 {
		cfg.ReplTimeout = time.Second
	}
	if cfg.Log == nil {
		cfg.Log = slog.Default()
	}
	seen := map[string]bool{}
	var peers []string
	for _, p := range cfg.Peers {
		if p != "" && !seen[p] {
			seen[p] = true
			peers = append(peers, p)
		}
	}
	if len(peers) == 0 {
		peers = []string{cfg.Self}
		seen[cfg.Self] = true
	}
	if !seen[cfg.Self] {
		return nil, fmt.Errorf("meta: self %q not in peer list %v", cfg.Self, peers)
	}
	cfg.Peers = peers

	g := &Group{
		cfg:    cfg,
		st:     cfg.Store,
		quorum: len(peers)/2 + 1,
		rng:    rand.New(rand.NewSource(time.Now().UnixNano())),
		peers:  make(map[string]*rpc.Client, len(peers)-1),
		stop:   make(chan struct{}),
	}
	g.leader.Store("")
	for _, p := range peers {
		if p == cfg.Self {
			continue
		}
		cc := cfg.Client
		cc.Addr = p
		if cc.DialTimeout <= 0 {
			cc.DialTimeout = cfg.ReplTimeout
		}
		if cc.WriteTimeout <= 0 {
			cc.WriteTimeout = cfg.ReplTimeout
		}
		if cc.ReadTimeout <= 0 {
			cc.ReadTimeout = 2 * cfg.ReplTimeout
		}
		if cc.MaxRetries == 0 {
			// The round loop is the retry policy; per-call retries
			// would just stretch rounds past the lease.
			cc.MaxRetries = 1
		}
		if cc.BreakerThreshold == 0 {
			// A breaker between peers delays failover recovery by its
			// cooldown; rounds already bound the cost of a dead peer.
			cc.BreakerThreshold = -1
		}
		if cc.Metrics == nil {
			cc.Metrics = cfg.Metrics
		}
		g.peers[p] = rpc.NewClient(cc)
	}

	// Resume the persisted ballot so a restart can never vote twice in
	// the same term, and push the term into the store so the epoch
	// floor survives the restart too.
	term, voted := g.st.LoadVote()
	g.term.Store(term)
	g.votedFor = voted
	g.st.SetTerm(term)

	if reg := cfg.Metrics; reg != nil {
		g.metTerm = reg.Gauge("parafile_meta_term")
		g.metLag = reg.Gauge("parafile_meta_replication_lag")
		g.metElections = reg.Counter("parafile_meta_elections_total")
		g.metStepDowns = reg.Counter("parafile_meta_stepdowns_total")
		g.metRepairs = reg.Counter("parafile_meta_repairs_total")
		g.metTerm.Set(int64(term))
	}
	return g, nil
}

// Start installs the group as the store's replicator and begins the
// election/heartbeat loop.
func (g *Group) Start() {
	g.st.SetReplicator(g.replicate)
	now := time.Now()
	g.lastHeard.Store(now.UnixNano())
	if len(g.cfg.Peers) == 1 {
		// Standalone: no one to wait for, take the floor immediately.
		g.electAt.Store(now.UnixNano())
	} else {
		g.resetElectionTimer(now)
	}
	g.wg.Add(1)
	go g.run()
}

// Stop halts the loop and closes the peer connections. The store's
// replicator is left installed but replicate refuses once stopped.
func (g *Group) Stop() {
	g.stopOnce.Do(func() { close(g.stop) })
	g.wg.Wait()
	for _, cl := range g.peers {
		cl.Close()
	}
}

// Resign steps down from leadership without changing term, for
// graceful shutdown: the lease is zeroed so namespace traffic is
// refused immediately and a peer can win the next election as soon as
// its timeout fires. No-op on followers.
func (g *Group) Resign() {
	g.mu.Lock()
	if g.role.Load() != roleLeader {
		g.mu.Unlock()
		return
	}
	g.role.Store(roleFollower)
	g.leaseUntil.Store(0)
	g.leader.Store("")
	g.mu.Unlock()
	g.resetElectionTimer(time.Now())
	if g.metStepDowns != nil {
		g.metStepDowns.Inc()
	}
	g.cfg.Log.Info("meta group resigned leadership", "term", g.term.Load())
}

// IsLeader reports whether this node holds a live leader lease right
// now. Namespace requests are gated on it.
func (g *Group) IsLeader() bool {
	return g.role.Load() == roleLeader &&
		time.Now().UnixNano() < g.leaseUntil.Load()
}

// LeaderHint is the address this node believes holds the lease ("" if
// unknown), used for NotLeader redirects.
func (g *Group) LeaderHint() string {
	if g.IsLeader() {
		return g.cfg.Self
	}
	s, _ := g.leader.Load().(string)
	if s == g.cfg.Self {
		// We were deposed or lapsed; don't redirect callers back here.
		return ""
	}
	return s
}

// Status reports this node's view of the group.
func (g *Group) Status() *rpc.MetaStatusInfo {
	role := rpc.RoleFollower
	switch g.role.Load() {
	case roleCandidate:
		role = rpc.RoleCandidate
	case roleLeader:
		role = rpc.RoleLeader
	}
	if len(g.cfg.Peers) == 1 && role == rpc.RoleLeader {
		role = rpc.RoleStandalone
	}
	idx, trm := g.st.LastEntry()
	var leaseMs int64
	if rem := g.leaseUntil.Load() - time.Now().UnixNano(); rem > 0 && g.role.Load() == roleLeader {
		leaseMs = rem / int64(time.Millisecond)
	}
	return &rpc.MetaStatusInfo{
		Term:      g.term.Load(),
		Role:      role,
		Leader:    g.LeaderHint(),
		Self:      g.cfg.Self,
		LastIndex: idx,
		LastTerm:  trm,
		LeaseMs:   leaseMs,
		Peers:     int64(len(g.cfg.Peers)),
	}
}

// suspendHeartbeats is a test hook: a suspended leader keeps its role
// but stops renewing the lease, so tests can force a lease lapse and
// an election without killing the process.
func (g *Group) suspendHeartbeats(v bool) { g.suspended.Store(v) }

// ---- main loop ----

func (g *Group) run() {
	defer g.wg.Done()
	for {
		select {
		case <-g.stop:
			return
		default:
		}
		now := time.Now()
		if g.role.Load() == roleLeader {
			if !g.suspended.Load() {
				g.heartbeatRound(now)
			}
			// Check-quorum: a leader partitioned from every follower
			// must stop considering itself special even after its
			// lease lapsed, so it rejoins as a clean follower.
			if now.Sub(time.Unix(0, g.lastQuorum.Load())) > g.cfg.ElectionTimeoutMax {
				g.stepDownSameTerm("lost quorum")
			}
			g.sleep(g.cfg.HeartbeatEvery)
			continue
		}
		deadline := time.Unix(0, g.electAt.Load())
		if now.After(deadline) {
			g.campaign()
			continue
		}
		wait := deadline.Sub(now)
		if wait > 50*time.Millisecond {
			wait = 50 * time.Millisecond
		}
		g.sleep(wait)
	}
}

func (g *Group) sleep(d time.Duration) {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-g.stop:
	case <-t.C:
	}
}

func (g *Group) resetElectionTimer(now time.Time) {
	g.mu.Lock()
	span := g.cfg.ElectionTimeoutMax - g.cfg.ElectionTimeoutMin
	d := g.cfg.ElectionTimeoutMin + time.Duration(g.rng.Int63n(int64(span)+1))
	g.mu.Unlock()
	g.electAt.Store(now.Add(d).UnixNano())
}

// ---- elections ----

func (g *Group) campaign() {
	g.mu.Lock()
	if g.role.Load() == roleLeader {
		g.mu.Unlock()
		return
	}
	term := g.term.Load() + 1
	// Persist the ballot before asking for anyone else's: if we crash
	// mid-campaign and restart, we must not vote for a different
	// candidate in this term.
	if err := g.st.SaveVote(term, g.cfg.Self); err != nil {
		g.mu.Unlock()
		g.cfg.Log.Error("meta group cannot persist ballot", "err", err)
		g.resetElectionTimer(time.Now())
		return
	}
	g.term.Store(term)
	g.votedFor = g.cfg.Self
	g.role.Store(roleCandidate)
	g.mu.Unlock()
	g.resetElectionTimer(time.Now())
	if g.metTerm != nil {
		g.metTerm.Set(int64(term))
	}
	if g.metElections != nil {
		g.metElections.Inc()
	}
	if g.cfg.Fault != nil {
		if err := g.cfg.Fault.Fire(context.Background(), 0, fault.OpMetaVote, ""); err != nil {
			g.cfg.Log.Info("meta group campaign faulted", "term", term, "err", err)
			return
		}
	}

	lastIdx, lastTrm := g.st.LastEntry()
	req := &rpc.MetaVoteReq{Term: term, Candidate: g.cfg.Self, LastIndex: lastIdx, LastTerm: lastTrm}
	type ballot struct {
		granted bool
		term    uint64
	}
	results := make(chan ballot, len(g.peers))
	ctx, cancel := context.WithTimeout(context.Background(), g.cfg.ReplTimeout)
	defer cancel()
	for _, cl := range g.peers {
		cl := cl
		go func() {
			resp, err := cl.MetaVote(ctx, req)
			if err != nil {
				results <- ballot{}
				return
			}
			results <- ballot{granted: resp.Granted, term: resp.Term}
		}()
	}
	votes := 1 // self
	for range g.peers {
		var b ballot
		select {
		case b = <-results:
		case <-ctx.Done():
			return
		case <-g.stop:
			return
		}
		if b.term > term {
			g.adoptTerm(b.term, "")
			return
		}
		if b.granted {
			votes++
		}
		if votes >= g.quorum {
			g.becomeLeader(term)
			return
		}
	}
}

func (g *Group) becomeLeader(term uint64) {
	g.mu.Lock()
	if g.term.Load() != term || g.role.Load() != roleCandidate {
		g.mu.Unlock()
		return
	}
	g.role.Store(roleLeader)
	g.leader.Store(g.cfg.Self)
	g.mu.Unlock()
	// Every entry and epoch minted from here on carries this term;
	// term<<epochTermShift becomes the epoch floor that fences any
	// predecessor out of the daemons.
	g.st.SetTerm(term)
	g.cfg.Log.Info("meta group won election", "term", term,
		"peers", len(g.cfg.Peers), "quorum", g.quorum)
	// Establish the lease before the loop's next tick so the first
	// namespace request after the election doesn't see a leader
	// without a lease.
	g.heartbeatRound(time.Now())
}

// adoptTerm moves to a strictly higher term as a follower. leader may
// be "" when the term was learned from a vote response.
func (g *Group) adoptTerm(term uint64, leader string) {
	g.mu.Lock()
	if term <= g.term.Load() {
		g.mu.Unlock()
		return
	}
	wasLeader := g.role.Load() == roleLeader
	g.term.Store(term)
	g.votedFor = ""
	if err := g.st.SaveVote(term, ""); err != nil {
		g.cfg.Log.Error("meta group cannot persist term", "term", term, "err", err)
	}
	g.role.Store(roleFollower)
	g.leader.Store(leader)
	g.leaseUntil.Store(0)
	g.mu.Unlock()
	g.st.SetTerm(term)
	g.resetElectionTimer(time.Now())
	if g.metTerm != nil {
		g.metTerm.Set(int64(term))
	}
	if wasLeader {
		if g.metStepDowns != nil {
			g.metStepDowns.Inc()
		}
		g.cfg.Log.Info("meta group deposed", "term", term, "leader", leader)
	}
}

func (g *Group) stepDownSameTerm(why string) {
	g.mu.Lock()
	if g.role.Load() != roleLeader {
		g.mu.Unlock()
		return
	}
	g.role.Store(roleFollower)
	g.leaseUntil.Store(0)
	g.leader.Store("")
	g.mu.Unlock()
	g.resetElectionTimer(time.Now())
	if g.metStepDowns != nil {
		g.metStepDowns.Inc()
	}
	g.cfg.Log.Info("meta group stepped down", "term", g.term.Load(), "why", why)
}

// ---- lease heartbeats ----

func (g *Group) extendLease(roundStart time.Time) {
	g.lastQuorum.Store(time.Now().UnixNano())
	// The lease extends from when the round *started*: the quorum
	// promise not to elect anyone else is only as fresh as the moment
	// the requests left.
	want := roundStart.Add(g.cfg.LeaseDuration).UnixNano()
	for {
		cur := g.leaseUntil.Load()
		if want <= cur || g.leaseUntil.CompareAndSwap(cur, want) {
			return
		}
	}
}

func (g *Group) heartbeatRound(now time.Time) {
	term := g.term.Load()
	if g.role.Load() != roleLeader {
		return
	}
	if len(g.peers) == 0 {
		g.extendLease(now)
		return
	}
	prevIdx, prevTrm := g.st.LastEntry()
	req := &rpc.MetaAppendReq{Term: term, Leader: g.cfg.Self, PrevIndex: prevIdx, PrevTerm: prevTrm}
	type reply struct {
		addr string
		resp *rpc.MetaAppendResp
	}
	results := make(chan reply, len(g.peers))
	ctx, cancel := context.WithTimeout(context.Background(), g.cfg.ReplTimeout)
	defer cancel()
	for addr, cl := range g.peers {
		addr, cl := addr, cl
		go func() {
			resp, err := cl.MetaAppendEntries(ctx, req)
			if err != nil {
				results <- reply{addr: addr}
				return
			}
			results <- reply{addr: addr, resp: resp}
		}()
	}
	acks := 1 // self
	minAcked := prevIdx
	extended := false
	for range g.peers {
		var r reply
		select {
		case r = <-results:
		case <-ctx.Done():
			return
		case <-g.stop:
			return
		}
		if r.resp == nil {
			continue
		}
		if r.resp.Term > term {
			g.adoptTerm(r.resp.Term, "")
			return
		}
		if !r.resp.OK {
			g.scheduleRepair(r.addr)
			if r.resp.LastIndex < minAcked {
				minAcked = r.resp.LastIndex
			}
			continue
		}
		acks++
		if r.resp.LastIndex < minAcked {
			minAcked = r.resp.LastIndex
		}
		if acks >= g.quorum && !extended {
			g.extendLease(now)
			extended = true
		}
	}
	if g.metLag != nil && extended {
		g.metLag.Set(int64(prevIdx - minAcked))
	}
}

// ---- log shipping ----

// replicate is the store's replicator hook. It runs with the store
// lock held (mutations are serialized through it), so it must never
// take g.mu — step-downs discovered here are deferred to a goroutine.
func (g *Group) replicate(ctx context.Context, r Replication) error {
	select {
	case <-g.stop:
		return fmt.Errorf("meta: group stopped")
	default:
	}
	term := g.term.Load()
	if g.role.Load() != roleLeader || r.Term != term {
		return fmt.Errorf("meta: not the leader (term %d)", term)
	}
	if g.cfg.Fault != nil {
		if err := g.cfg.Fault.Fire(ctx, 0, fault.OpMetaReplicate, ""); err != nil {
			return err
		}
	}
	start := time.Now()
	if len(g.peers) == 0 {
		g.extendLease(start)
		return nil
	}
	req := &rpc.MetaAppendReq{
		Term: term, Leader: g.cfg.Self,
		PrevIndex: r.PrevIndex, PrevTerm: r.PrevTerm,
		Entries: []rpc.ReplEntry{{Index: r.Index, Term: r.Term, Payload: r.Payload}},
	}
	type reply struct {
		addr string
		resp *rpc.MetaAppendResp
	}
	results := make(chan reply, len(g.peers))
	rctx, cancel := context.WithTimeout(ctx, g.cfg.ReplTimeout)
	defer cancel()
	for addr, cl := range g.peers {
		addr, cl := addr, cl
		go func() {
			resp, err := cl.MetaAppendEntries(rctx, req)
			if err != nil {
				results <- reply{addr: addr}
				return
			}
			results <- reply{addr: addr, resp: resp}
		}()
	}
	acks := 1 // the local durable append counts
	for range g.peers {
		var rp reply
		select {
		case rp = <-results:
		case <-rctx.Done():
			return fmt.Errorf("meta: replication round timed out (%d/%d acks)", acks, g.quorum)
		case <-g.stop:
			return fmt.Errorf("meta: group stopped mid-round")
		}
		if rp.resp == nil {
			continue
		}
		if rp.resp.Term > term {
			// Deposed mid-round. We hold the store lock, so step down
			// asynchronously; refuse this mutation either way.
			higher := rp.resp.Term
			go g.adoptTerm(higher, "")
			return fmt.Errorf("meta: deposed by term %d", higher)
		}
		if !rp.resp.OK {
			g.scheduleRepair(rp.addr)
			continue
		}
		acks++
		if acks >= g.quorum {
			g.extendLease(start)
			if g.metLag != nil {
				g.metLag.Set(0)
			}
			return nil
		}
	}
	return fmt.Errorf("meta: no quorum (%d/%d acks)", acks, g.quorum)
}

// scheduleRepair launches (at most one per peer) a full-state
// snapshot install toward a follower that nacked.
func (g *Group) scheduleRepair(addr string) {
	if _, busy := g.repairing.LoadOrStore(addr, struct{}{}); busy {
		return
	}
	cl := g.peers[addr]
	g.wg.Add(1)
	go func() {
		defer g.wg.Done()
		defer g.repairing.Delete(addr)
		select {
		case <-g.stop:
			return
		default:
		}
		term := g.term.Load()
		if g.role.Load() != roleLeader {
			return
		}
		state := g.st.SerializeState()
		idx, trm := g.st.LastEntry()
		ctx, cancel := context.WithTimeout(context.Background(), 2*g.cfg.ReplTimeout)
		defer cancel()
		resp, err := cl.MetaSnapInstall(ctx, &rpc.MetaSnapInstallReq{
			Term: term, Leader: g.cfg.Self, LastIndex: idx, LastTerm: trm, State: state,
		})
		if err != nil {
			g.cfg.Log.Info("meta group repair failed", "peer", addr, "err", err)
			return
		}
		if resp.Term > term {
			g.adoptTerm(resp.Term, "")
			return
		}
		if g.metRepairs != nil {
			g.metRepairs.Inc()
		}
		g.cfg.Log.Info("meta group repaired follower", "peer", addr, "index", idx, "term", trm)
	}()
}

// ---- peer-facing handlers (wired into the service's router) ----

// HandleVote answers a peer's election ballot.
func (g *Group) HandleVote(req *rpc.MetaVoteReq) *rpc.MetaVoteResp {
	g.mu.Lock()
	defer g.mu.Unlock()
	cur := g.term.Load()
	if req.Term < cur {
		return &rpc.MetaVoteResp{Term: cur, Granted: false}
	}
	// Lease safety: while we heard from a live leader within the
	// minimum election timeout, refuse the ballot WITHOUT adopting the
	// candidate's term — a partitioned node returning with an inflated
	// term must not depose a healthy leaseholder through us.
	leader, _ := g.leader.Load().(string)
	heard := time.Since(time.Unix(0, g.lastHeard.Load()))
	if heard < g.cfg.ElectionTimeoutMin && leader != "" && leader != req.Candidate {
		return &rpc.MetaVoteResp{Term: cur, Granted: false}
	}
	if g.IsLeader() && req.Candidate != g.cfg.Self {
		return &rpc.MetaVoteResp{Term: cur, Granted: false}
	}
	if req.Term > cur {
		wasLeader := g.role.Load() == roleLeader
		g.term.Store(req.Term)
		g.votedFor = ""
		g.role.Store(roleFollower)
		g.leaseUntil.Store(0)
		g.leader.Store("")
		cur = req.Term
		if g.metTerm != nil {
			g.metTerm.Set(int64(cur))
		}
		if wasLeader && g.metStepDowns != nil {
			g.metStepDowns.Inc()
		}
		g.st.SetTerm(cur)
	}
	lastIdx, lastTrm := g.st.LastEntry()
	upToDate := req.LastTerm > lastTrm ||
		(req.LastTerm == lastTrm && req.LastIndex >= lastIdx)
	if (g.votedFor == "" || g.votedFor == req.Candidate) && upToDate {
		// Persist before granting: the ballot must survive a crash.
		if err := g.st.SaveVote(cur, req.Candidate); err != nil {
			g.cfg.Log.Error("meta group cannot persist vote", "err", err)
			return &rpc.MetaVoteResp{Term: cur, Granted: false}
		}
		g.votedFor = req.Candidate
		g.electAt.Store(time.Now().Add(g.cfg.ElectionTimeoutMax).UnixNano())
		return &rpc.MetaVoteResp{Term: cur, Granted: true}
	}
	if req.Term > g.termPersisted() {
		// Term adopted but vote withheld: still persist the term so a
		// restart cannot regress and double-vote in it.
		if err := g.st.SaveVote(cur, g.votedFor); err != nil {
			g.cfg.Log.Error("meta group cannot persist term", "err", err)
		}
	}
	return &rpc.MetaVoteResp{Term: cur, Granted: false}
}

// termPersisted reads back the durable term (used only to avoid
// redundant vote-file writes).
func (g *Group) termPersisted() uint64 {
	t, _ := g.st.LoadVote()
	return t
}

// HandleAppend applies a leader's log batch (or heartbeat).
func (g *Group) HandleAppend(ctx context.Context, req *rpc.MetaAppendReq) *rpc.MetaAppendResp {
	cur := g.term.Load()
	tailIdx, tailTrm := g.st.LastEntry()
	if req.Term < cur {
		return &rpc.MetaAppendResp{Term: cur, OK: false, LastIndex: tailIdx}
	}
	if req.Term > cur {
		g.adoptTerm(req.Term, req.Leader)
		cur = req.Term
	} else if g.role.Load() == roleLeader {
		// Same term, different self-styled leader cannot happen (one
		// ballot per term); this is our own echo — ignore.
		return &rpc.MetaAppendResp{Term: cur, OK: false, LastIndex: tailIdx}
	}
	g.role.Store(roleFollower)
	g.leader.Store(req.Leader)
	now := time.Now()
	g.lastHeard.Store(now.UnixNano())
	g.electAt.Store(now.Add(g.cfg.ElectionTimeoutMax).UnixNano())

	if len(req.Entries) > 0 {
		last := req.Entries[len(req.Entries)-1]
		if tailIdx == last.Index && tailTrm == last.Term {
			// Full duplicate (leader retry after a lost ack).
			return &rpc.MetaAppendResp{Term: cur, OK: true, LastIndex: tailIdx}
		}
	}
	if tailIdx != req.PrevIndex || tailTrm != req.PrevTerm {
		return &rpc.MetaAppendResp{Term: cur, OK: false, LastIndex: tailIdx}
	}
	for _, e := range req.Entries {
		if err := g.st.AppendEntry(ctx, e.Index, e.Term, e.Payload); err != nil {
			g.cfg.Log.Error("meta group append failed", "index", e.Index, "err", err)
			idx, _ := g.st.LastEntry()
			return &rpc.MetaAppendResp{Term: cur, OK: false, LastIndex: idx}
		}
	}
	idx, _ := g.st.LastEntry()
	return &rpc.MetaAppendResp{Term: cur, OK: true, LastIndex: idx}
}

// HandleSnapInstall atomically replaces the local state with the
// leader's serialized namespace.
func (g *Group) HandleSnapInstall(ctx context.Context, req *rpc.MetaSnapInstallReq) *rpc.MetaAppendResp {
	cur := g.term.Load()
	tailIdx, _ := g.st.LastEntry()
	if req.Term < cur {
		return &rpc.MetaAppendResp{Term: cur, OK: false, LastIndex: tailIdx}
	}
	if req.Term > cur {
		g.adoptTerm(req.Term, req.Leader)
		cur = req.Term
	}
	g.role.Store(roleFollower)
	g.leader.Store(req.Leader)
	now := time.Now()
	g.lastHeard.Store(now.UnixNano())
	g.electAt.Store(now.Add(g.cfg.ElectionTimeoutMax).UnixNano())
	if err := g.st.InstallSnapshot(ctx, req.State); err != nil {
		g.cfg.Log.Error("meta group snapshot install failed", "err", err)
		idx, _ := g.st.LastEntry()
		return &rpc.MetaAppendResp{Term: cur, OK: false, LastIndex: idx}
	}
	idx, _ := g.st.LastEntry()
	g.cfg.Log.Info("meta group installed snapshot", "index", idx, "leader", req.Leader)
	return &rpc.MetaAppendResp{Term: cur, OK: true, LastIndex: idx}
}

package meta

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"parafile/internal/rpc"
)

// torture_test.go kills the store at every write/fsync boundary and
// asserts replay converges. The harness sweeps every crash point at
// every invocation count K: the injected hook "dies" on its K-th
// crossing of the target point (and stays dead for every later
// crossing, like a real dead process), the store is abandoned exactly
// where it stood, the directory is reopened, and the recovered state
// must be the acked prefix — with the crashed operation present or
// absent per the crash point's durability contract — after which the
// remaining operations re-run and the final state must be
// byte-for-byte the state of a run that never crashed.

// tortureCrasher dies on the k-th crossing of point and every
// crossing after it.
type tortureCrasher struct {
	point CrashPoint
	k     int
	n     int
	fired bool
}

func (c *tortureCrasher) hook(p CrashPoint) error {
	if p != c.point {
		return nil
	}
	c.n++
	if c.n >= c.k {
		c.fired = true
		return fmt.Errorf("torture: crash at %s #%d", p, c.n)
	}
	return nil
}

// tortureOp is one scripted mutation plus a probe for whether its
// effect is visible in a store.
type tortureOp struct {
	name    string
	run     func(ctx context.Context, st *Store) error
	present func(st *Store) bool
}

// tortureState is a full logical snapshot of a store, for exact
// prefix comparison.
type tortureState struct {
	files []*rpc.MetaFile
	nodes []rpc.MetaNode
}

func captureState(st *Store) tortureState {
	return tortureState{files: st.List(), nodes: st.Nodes()}
}

func (s tortureState) equal(o tortureState) bool {
	return reflect.DeepEqual(s.files, o.files) && reflect.DeepEqual(s.nodes, o.nodes)
}

func tortureOps() []tortureOp {
	nodeOp := func(addr string) tortureOp {
		return tortureOp{
			name: "node " + addr,
			run: func(ctx context.Context, st *Store) error {
				_, err := st.SetNode(ctx, addr, rpc.NodeActive)
				return err
			},
			present: func(st *Store) bool {
				for _, n := range st.Nodes() {
					if n.Addr == addr && n.State == rpc.NodeActive {
						return true
					}
				}
				return false
			},
		}
	}
	createOp := func(name string, nodes ...string) tortureOp {
		return tortureOp{
			name: "create " + name,
			run: func(ctx context.Context, st *Store) error {
				return st.Create(ctx, testFile(name, 1, nodes...))
			},
			present: func(st *Store) bool {
				_, err := st.Get(name)
				return err == nil
			},
		}
	}
	extendOp := func(name string, length int64) tortureOp {
		return tortureOp{
			name: fmt.Sprintf("extend %s %d", name, length),
			run: func(ctx context.Context, st *Store) error {
				_, err := st.Extend(ctx, name, length)
				return err
			},
			present: func(st *Store) bool {
				f, err := st.Get(name)
				return err == nil && f.Length >= length
			},
		}
	}
	return []tortureOp{
		nodeOp("n1:1"),
		nodeOp("n2:1"),
		createOp("alpha", "n1:1", "n2:1"),
		createOp("beta", "n1:1"),
		extendOp("alpha", 8192),
		{
			name: "commit alpha",
			run: func(ctx context.Context, st *Store) error {
				_, err := st.Commit(ctx, &rpc.MetaCommitReq{
					Name: "alpha", OldEpoch: 1, StoreName: "alpha@2",
					Nodes: []string{"n1:1", "n2:1"}, Assign: []int{0, 1},
				})
				return err
			},
			present: func(st *Store) bool {
				f, err := st.Get("alpha")
				return err == nil && f.Epoch != 1
			},
		},
		createOp("gamma", "n2:1"),
		{
			name: "remove beta",
			run: func(ctx context.Context, st *Store) error {
				return st.Remove(ctx, "beta")
			},
			present: func(st *Store) bool {
				_, err := st.Get("beta")
				return errors.Is(err, ErrNotFound)
			},
		},
		extendOp("gamma", 4096),
		nodeOp("n3:1"),
		createOp("delta", "n3:1"),
		extendOp("alpha", 16384),
	}
}

// tolerateRerun forgives the errors a re-run of an already-applied
// operation legitimately answers.
func tolerateRerun(err error) error {
	if errors.Is(err, ErrExists) || errors.Is(err, ErrStaleEpoch) {
		return nil
	}
	return err
}

// tortureSnapshotEvery is small enough that compaction triggers
// several times inside the op script, so the snapshot crash points
// actually get crossed.
const tortureSnapshotEvery = 150

// crashMustBeAbsent / crashMustBePresent encode each point's
// durability contract within this harness. The process shares the OS
// with the "crashed" store, so bytes written but not fsynced are
// still visible on reopen — unsynced therefore asserts present here;
// under real power loss that record could come back torn, which the
// replay's tail truncation handles (the separate mid-record tests
// cover torn tails byte-by-byte).
func crashOutcome(p CrashPoint) (mustBeAbsent, mustBePresent bool) {
	switch p {
	case CrashAppendPre, CrashAppendPartial:
		return true, false
	case CrashAppendUnsynced, CrashAppendSynced:
		return false, true
	default:
		// Snapshot points: compaction runs after the triggering record
		// was fsynced and applied, so the mutation always survives.
		return false, true
	}
}

func TestStoreCrashTortureEveryPoint(t *testing.T) {
	ctx := context.Background()
	ops := tortureOps()

	// Reference: the same script with no crashes, capturing the exact
	// logical state after every prefix. states[i] is the state after
	// ops[0..i-1] (states[0] is the empty store).
	ref, err := OpenStore(t.TempDir(), StoreConfig{SnapshotEvery: tortureSnapshotEvery})
	if err != nil {
		t.Fatalf("reference OpenStore: %v", err)
	}
	defer ref.Close()
	states := make([]tortureState, 0, len(ops)+1)
	states = append(states, captureState(ref))
	for _, op := range ops {
		if err := op.run(ctx, ref); err != nil {
			t.Fatalf("reference %s: %v", op.name, err)
		}
		states = append(states, captureState(ref))
	}

	for _, point := range CrashPoints {
		point := point
		t.Run(string(point), func(t *testing.T) {
			for k := 1; k <= 200; k++ {
				crashed := runTortureOnce(t, ctx, ops, point, k, states)
				if !crashed {
					// The K-th crossing was never reached: every earlier
					// K crashed and converged; the sweep is complete.
					if k == 1 {
						t.Fatalf("crash point %s was never crossed — the script does not exercise it", point)
					}
					return
				}
			}
			t.Fatalf("crash point %s still firing after 200 invocations", point)
		})
	}
}

// runTortureOnce runs the script against a fresh directory, crashing
// at the k-th crossing of point. Returns false when the run completed
// without the hook firing. On a crash it verifies recovery: reopen,
// require the recovered state to be EXACTLY the reference state
// before or after the crashed op (per the point's durability
// contract), re-run from the crashed op, and require convergence with
// the crash-free final state.
func runTortureOnce(t *testing.T, ctx context.Context, ops []tortureOp, point CrashPoint, k int, states []tortureState) bool {
	t.Helper()
	dir := t.TempDir()
	cr := &tortureCrasher{point: point, k: k}
	st, err := OpenStore(dir, StoreConfig{SnapshotEvery: tortureSnapshotEvery, Crash: cr.hook})
	if err != nil {
		t.Fatalf("[%s #%d] OpenStore: %v", point, k, err)
	}

	crashedAt := -1
	for i, op := range ops {
		opErr := op.run(ctx, st)
		if cr.fired {
			// The process died somewhere inside this op: its outcome is
			// unknown regardless of the returned error. Abandon the
			// store where it stood (the file content on disk is exactly
			// what the dying process managed to write).
			crashedAt = i
			break
		}
		if opErr != nil {
			t.Fatalf("[%s #%d] %s failed without crashing: %v", point, k, op.name, opErr)
		}
	}
	// Drop the handle without giving the dead store a chance to flush
	// anything else.
	abandonStore(st)
	if crashedAt < 0 {
		return false
	}

	// A dead process's directory must always reopen.
	re, err := OpenStore(dir, StoreConfig{SnapshotEvery: tortureSnapshotEvery})
	if err != nil {
		t.Fatalf("[%s #%d] reopen after crash at %q: %v", point, k, ops[crashedAt].name, err)
	}
	defer re.Close()

	// The recovered state must be exactly the acked prefix, with the
	// crashed op either fully present or fully absent — never a
	// partial effect and never a lost earlier op.
	got := captureState(re)
	present := got.equal(states[crashedAt+1])
	absent := got.equal(states[crashedAt])
	if !present && !absent {
		t.Fatalf("[%s #%d] recovered state after crash at %q is neither the before- nor after-op state:\n got %+v",
			point, k, ops[crashedAt].name, got)
	}
	mustBeAbsent, mustBePresent := crashOutcome(point)
	if mustBeAbsent && present && !absent {
		t.Fatalf("[%s #%d] op %q survived a crash before its record was written", point, k, ops[crashedAt].name)
	}
	if mustBePresent && absent && !present {
		t.Fatalf("[%s #%d] op %q lost after its record was durable", point, k, ops[crashedAt].name)
	}

	// Finish the script (re-running the crashed op, which may already
	// have applied) and require convergence with the crash-free run.
	for i := crashedAt; i < len(ops); i++ {
		if err := tolerateRerun(ops[i].run(ctx, re)); err != nil {
			t.Fatalf("[%s #%d] re-running %s: %v", point, k, ops[i].name, err)
		}
	}
	if final := captureState(re); !final.equal(states[len(ops)]) {
		t.Fatalf("[%s #%d] recovered run diverged from the crash-free run after crash at %q:\n got %+v\nwant %+v",
			point, k, ops[crashedAt].name, final, states[len(ops)])
	}
	return true
}

// abandonStore drops the store's file handle without syncing: the
// simulated dead process must not flush anything on its way out.
func abandonStore(st *Store) {
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.log != nil {
		st.log.Close()
		st.log = nil
	}
}

// TestStoreMisrestoredBackupRejected covers the rollback trap: an
// operator restores an old copy of the log next to a newer snapshot.
// Every legitimate crash leaves the log tail at or past the snapshot
// position (or empty after compaction); a log that ends BEFORE the
// snapshot means the namespace would silently roll back, so the store
// must refuse to open.
func TestStoreMisrestoredBackupRejected(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()

	// Phase 1: a few mutations, no compaction; back up the log.
	st, err := OpenStore(dir, StoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.SetNode(ctx, "n1:1", rpc.NodeActive); err != nil {
		t.Fatal(err)
	}
	if err := st.Create(ctx, testFile("a", 1, "n1:1")); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	logPath := filepath.Join(dir, logName)
	backup, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}

	// Phase 2: more mutations, then compact — the snapshot now covers
	// a higher index than the backup's tail.
	st, err = OpenStore(dir, StoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := st.Create(ctx, testFile("b", 1, "n1:1")); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Extend(ctx, "b", 4096); err != nil {
		t.Fatal(err)
	}
	if err := st.Snapshot(ctx); err != nil {
		t.Fatal(err)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Mis-restore: the old log lands next to the new snapshot.
	if err := os.WriteFile(logPath, backup, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenStore(dir, StoreConfig{}); !errors.Is(err, ErrMisrestored) {
		t.Fatalf("OpenStore over rolled-back log: got %v, want ErrMisrestored", err)
	}

	// Sanity: an empty log next to the snapshot (the normal
	// post-compaction crash state) still opens.
	if err := os.WriteFile(logPath, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	re, err := OpenStore(dir, StoreConfig{})
	if err != nil {
		t.Fatalf("OpenStore with compacted log: %v", err)
	}
	defer re.Close()
	if _, err := re.Get("b"); err != nil {
		t.Fatalf("snapshot state lost: %v", err)
	}
}

// TestStoreVotePersistence: the (term, votedFor) ballot must survive
// restarts and corruption must read as the zero ballot, never an
// error (a node with a scrambled vote file can rejoin and re-vote at
// a higher term).
func TestStoreVotePersistence(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, StoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if term, voted := st.LoadVote(); term != 0 || voted != "" {
		t.Fatalf("fresh vote = (%d, %q), want zero", term, voted)
	}
	if err := st.SaveVote(7, "a:1"); err != nil {
		t.Fatal(err)
	}
	st.Close()

	st2, err := OpenStore(dir, StoreConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer st2.Close()
	if term, voted := st2.LoadVote(); term != 7 || voted != "a:1" {
		t.Fatalf("restored vote = (%d, %q), want (7, a:1)", term, voted)
	}
	if err := os.WriteFile(filepath.Join(dir, voteName), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if term, voted := st2.LoadVote(); term != 0 || voted != "" {
		t.Fatalf("corrupt vote = (%d, %q), want zero ballot", term, voted)
	}
}

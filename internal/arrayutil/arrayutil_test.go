package arrayutil

import (
	"math/rand"
	"testing"
)

func TestShapeValidation(t *testing.T) {
	if _, err := NewShape(0, 4); err == nil {
		t.Error("zero element size accepted")
	}
	if _, err := NewShape(4); err == nil {
		t.Error("no dimensions accepted")
	}
	if _, err := NewShape(4, 3, 0); err == nil {
		t.Error("zero extent accepted")
	}
	s, err := NewShape(4, 3, 5)
	if err != nil {
		t.Fatal(err)
	}
	if s.Elems() != 15 || s.Bytes() != 60 {
		t.Errorf("Elems=%d Bytes=%d, want 15, 60", s.Elems(), s.Bytes())
	}
}

func TestIndexCoordsRoundTrip(t *testing.T) {
	s, _ := NewShape(2, 3, 4, 5)
	for ord := int64(0); ord < s.Elems(); ord++ {
		idx, err := s.Coords(ord)
		if err != nil {
			t.Fatal(err)
		}
		back, err := s.Index(idx...)
		if err != nil {
			t.Fatal(err)
		}
		if back != ord {
			t.Fatalf("Index(Coords(%d)) = %d", ord, back)
		}
	}
	if _, err := s.Index(0, 0); err == nil {
		t.Error("rank mismatch accepted")
	}
	if _, err := s.Index(3, 0, 0); err == nil {
		t.Error("out-of-range index accepted")
	}
	if _, err := s.Coords(-1); err == nil {
		t.Error("negative ordinal accepted")
	}
	if _, err := s.Coords(s.Elems()); err == nil {
		t.Error("overflowing ordinal accepted")
	}
}

func TestByteOffsetRowMajor(t *testing.T) {
	s, _ := NewShape(4, 2, 3) // 2×3 of 4-byte elements
	cases := []struct {
		i, j, want int64
	}{
		{0, 0, 0}, {0, 1, 4}, {0, 2, 8}, {1, 0, 12}, {1, 2, 20},
	}
	for _, c := range cases {
		got, err := s.ByteOffset(c.i, c.j)
		if err != nil || got != c.want {
			t.Errorf("ByteOffset(%d,%d) = %d, %v; want %d", c.i, c.j, got, err, c.want)
		}
	}
}

// TestSubarrayOracle: the subarray byte set equals brute-force
// membership for random shapes and boxes.
func TestSubarrayOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	for iter := 0; iter < 100; iter++ {
		nd := 1 + rng.Intn(3)
		dims := make([]int64, nd)
		starts := make([]int64, nd)
		counts := make([]int64, nd)
		for k := range dims {
			dims[k] = 2 + rng.Int63n(5)
			starts[k] = rng.Int63n(dims[k])
			counts[k] = 1 + rng.Int63n(dims[k]-starts[k])
		}
		es := int64(1 + rng.Intn(3))
		s, err := NewShape(es, dims...)
		if err != nil {
			t.Fatal(err)
		}
		set, err := s.Subarray(starts, counts)
		if err != nil {
			t.Fatal(err)
		}
		if set == nil {
			// Dense: the box is the whole array.
			for k := range dims {
				if starts[k] != 0 || counts[k] != dims[k] {
					t.Fatalf("nil set for a proper subarray")
				}
			}
			continue
		}
		if err := set.Validate(); err != nil {
			t.Fatalf("subarray set invalid: %v", err)
		}
		in := map[int64]bool{}
		for _, x := range set.Offsets() {
			in[x] = true
		}
		var count int64
		for ord := int64(0); ord < s.Elems(); ord++ {
			idx, _ := s.Coords(ord)
			inside := true
			for k := range idx {
				if idx[k] < starts[k] || idx[k] >= starts[k]+counts[k] {
					inside = false
					break
				}
			}
			for b := int64(0); b < es; b++ {
				off := ord*es + b
				if in[off] != inside {
					t.Fatalf("shape %v box %v/%v: byte %d membership %v, want %v",
						dims, starts, counts, off, in[off], inside)
				}
			}
			if inside {
				count += es
			}
		}
		if set.Size() != count {
			t.Fatalf("subarray size %d, oracle %d", set.Size(), count)
		}
	}
}

func TestSubarrayValidation(t *testing.T) {
	s, _ := NewShape(1, 4, 4)
	if _, err := s.Subarray([]int64{0}, []int64{1}); err == nil {
		t.Error("rank mismatch accepted")
	}
	if _, err := s.Subarray([]int64{0, 3}, []int64{1, 2}); err == nil {
		t.Error("overflowing box accepted")
	}
	if _, err := s.Subarray([]int64{0, 0}, []int64{0, 1}); err == nil {
		t.Error("empty box accepted")
	}
}

func TestFillVerify(t *testing.T) {
	buf := make([]byte, 64)
	Fill(buf, 4)
	if off := Verify(buf, 4); off != -1 {
		t.Errorf("fresh fill fails verify at %d", off)
	}
	buf[17]++
	if off := Verify(buf, 4); off != 17 {
		t.Errorf("corruption detected at %d, want 17", off)
	}
}

// Package arrayutil provides row-major multidimensional array helpers
// shared by the examples, benchmarks and the MPI-IO layer: index
// arithmetic, deterministic fills, and the translation of rectangular
// subarrays into nested FALLS sets (the representation §4 motivates
// for the dominant data structure of parallel scientific applications).
package arrayutil

import (
	"fmt"

	"parafile/internal/falls"
)

// Shape describes a row-major array of fixed-size elements.
type Shape struct {
	Dims     []int64
	ElemSize int64
}

// NewShape validates the dimensions.
func NewShape(elemSize int64, dims ...int64) (Shape, error) {
	if elemSize < 1 {
		return Shape{}, fmt.Errorf("arrayutil: non-positive element size %d", elemSize)
	}
	if len(dims) == 0 {
		return Shape{}, fmt.Errorf("arrayutil: no dimensions")
	}
	for i, d := range dims {
		if d < 1 {
			return Shape{}, fmt.Errorf("arrayutil: dimension %d has non-positive extent %d", i, d)
		}
	}
	return Shape{Dims: append([]int64(nil), dims...), ElemSize: elemSize}, nil
}

// Elems returns the number of elements.
func (s Shape) Elems() int64 {
	n := int64(1)
	for _, d := range s.Dims {
		n *= d
	}
	return n
}

// Bytes returns the total byte size.
func (s Shape) Bytes() int64 { return s.Elems() * s.ElemSize }

// Index converts an index vector to the element's row-major ordinal.
func (s Shape) Index(idx ...int64) (int64, error) {
	if len(idx) != len(s.Dims) {
		return 0, fmt.Errorf("arrayutil: %d indices for %d dimensions", len(idx), len(s.Dims))
	}
	var off int64
	for k, i := range idx {
		if i < 0 || i >= s.Dims[k] {
			return 0, fmt.Errorf("arrayutil: index %d out of range [0,%d) in dimension %d",
				i, s.Dims[k], k)
		}
		off = off*s.Dims[k] + i
	}
	return off, nil
}

// ByteOffset converts an index vector to the element's byte offset.
func (s Shape) ByteOffset(idx ...int64) (int64, error) {
	ord, err := s.Index(idx...)
	if err != nil {
		return 0, err
	}
	return ord * s.ElemSize, nil
}

// Coords converts a row-major ordinal back to an index vector.
func (s Shape) Coords(ord int64) ([]int64, error) {
	if ord < 0 || ord >= s.Elems() {
		return nil, fmt.Errorf("arrayutil: ordinal %d out of range [0,%d)", ord, s.Elems())
	}
	idx := make([]int64, len(s.Dims))
	for k := len(s.Dims) - 1; k >= 0; k-- {
		idx[k] = ord % s.Dims[k]
		ord /= s.Dims[k]
	}
	return idx, nil
}

// Subarray returns the byte set of the rectangular subarray
// [starts[k], starts[k]+counts[k]) of each dimension, as a nested
// FALLS set over the array's byte space.
func (s Shape) Subarray(starts, counts []int64) (falls.Set, error) {
	if len(starts) != len(s.Dims) || len(counts) != len(s.Dims) {
		return nil, fmt.Errorf("arrayutil: starts/counts rank mismatch")
	}
	for k := range starts {
		if starts[k] < 0 || counts[k] < 1 || starts[k]+counts[k] > s.Dims[k] {
			return nil, fmt.Errorf("arrayutil: subarray [%d,%d) out of range [0,%d) in dimension %d",
				starts[k], starts[k]+counts[k], s.Dims[k], k)
		}
	}
	return s.subarrayDim(0, starts, counts), nil
}

func (s Shape) subarrayDim(k int, starts, counts []int64) falls.Set {
	rowBytes := s.ElemSize
	for _, d := range s.Dims[k+1:] {
		rowBytes *= d
	}
	full := starts[k] == 0 && counts[k] == s.Dims[k]
	var inner falls.Set
	if k+1 < len(s.Dims) {
		inner = s.subarrayDim(k+1, starts, counts)
	}
	if inner == nil && full {
		return nil // dense from here down
	}
	l := starts[k] * rowBytes
	if inner == nil {
		return falls.Set{falls.Leaf(falls.FALLS{
			L: l, R: l + counts[k]*rowBytes - 1, S: counts[k] * rowBytes, N: 1,
		})}
	}
	return falls.Set{{
		FALLS: falls.FALLS{L: l, R: l + rowBytes - 1, S: rowBytes, N: counts[k]},
		Inner: inner,
	}}
}

// Fill writes a deterministic pattern into the buffer: byte i of
// element e is a function of e and i, so misplaced bytes are
// detectable.
func Fill(buf []byte, elemSize int64) {
	for i := range buf {
		e := int64(i) / elemSize
		b := int64(i) % elemSize
		buf[i] = byte(e*31 + b*7 + 1)
	}
}

// Verify checks a buffer region against the Fill pattern, returning
// the first mismatching offset or -1.
func Verify(buf []byte, elemSize int64) int64 {
	for i := range buf {
		e := int64(i) / elemSize
		b := int64(i) % elemSize
		if buf[i] != byte(e*31+b*7+1) {
			return int64(i)
		}
	}
	return -1
}

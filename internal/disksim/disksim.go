// Package disksim models the storage tier of the Clusterfile I/O
// nodes (§8.2): a buffer-cache tier whose cost is memory copying, and
// an IDE-era disk tier whose cost is dominated by a per-request
// overhead plus sustained transfer, with an extra penalty for
// fragmented (non-sequential) writes. The evaluation writes each
// subfile append-style, so the baseline disk pattern is sequential.
package disksim

import (
	"fmt"

	"parafile/internal/sim"
)

// Config parameterizes one I/O node's storage.
type Config struct {
	// CacheBandwidthBytesPerSec is the memory-copy bandwidth of the
	// buffer cache (a Pentium III copies roughly 250 MB/s).
	CacheBandwidthBytesPerSec int64
	// CacheOverheadNs is the fixed per-write buffer-cache entry cost.
	CacheOverheadNs int64
	// DiskBandwidthBytesPerSec is the sustained sequential disk
	// bandwidth (era IDE disks: ~25-30 MB/s).
	DiskBandwidthBytesPerSec int64
	// DiskOverheadNs is the fixed per-write disk cost (request setup,
	// rotational positioning for the append point).
	DiskOverheadNs int64
	// FragmentPenaltyNs is the extra positioning cost per additional
	// non-contiguous extent of a fragmented write.
	FragmentPenaltyNs int64
}

// IDE2002 returns parameters for the paper's testbed storage: IDE
// disks behind the Linux buffer cache on 800 MHz Pentium III I/O
// nodes, calibrated so the regenerated Table 1/2 disk columns land in
// the paper's range.
func IDE2002() Config {
	return Config{
		CacheBandwidthBytesPerSec: 250 * 1000 * 1000,
		CacheOverheadNs:           10 * sim.Microsecond,
		DiskBandwidthBytesPerSec:  28 * 1000 * 1000,
		DiskOverheadNs:            300 * sim.Microsecond,
		FragmentPenaltyNs:         500,
	}
}

// Disk is one I/O node's storage facility. Writes serialize on it.
type Disk struct {
	cfg   Config
	res   *sim.Resource
	stats Stats
}

// Stats accumulates storage counters.
type Stats struct {
	CacheWrites, DiskWrites int64
	CacheBytes, DiskBytes   int64
}

// New creates a disk on the kernel.
func New(k *sim.Kernel, cfg Config) *Disk {
	return &Disk{cfg: cfg, res: sim.NewResource(k)}
}

// Stats returns the accumulated counters.
func (d *Disk) Stats() Stats { return d.stats }

// CacheCost returns the modeled time to absorb a write of the given
// size and fragmentation into the buffer cache.
func (d *Disk) CacheCost(bytes, extents int64) int64 {
	if extents < 1 {
		extents = 1
	}
	return d.cfg.CacheOverheadNs +
		(extents-1)*d.cfg.FragmentPenaltyNs +
		sim.TransferTime(bytes, d.cfg.CacheBandwidthBytesPerSec)
}

// DiskCost returns the modeled time to write through to the platter.
func (d *Disk) DiskCost(bytes, extents int64) int64 {
	if extents < 1 {
		extents = 1
	}
	return d.cfg.DiskOverheadNs +
		(extents-1)*d.cfg.FragmentPenaltyNs +
		sim.TransferTime(bytes, d.cfg.DiskBandwidthBytesPerSec)
}

// Account records a write in the statistics without scheduling it on
// the disk's own resource — used when the caller serializes the write
// on another facility (e.g. a single-threaded server thread).
func (d *Disk) Account(bytes int64, toDisk bool) {
	if toDisk {
		d.stats.DiskWrites++
		d.stats.DiskBytes += bytes
	} else {
		d.stats.CacheWrites++
		d.stats.CacheBytes += bytes
	}
}

// WriteCache schedules a buffer-cache write of the given size split
// into the given number of extents; done (if non-nil) runs at
// completion.
func (d *Disk) WriteCache(bytes, extents int64, done func()) error {
	if bytes < 0 {
		return fmt.Errorf("disksim: negative write size %d", bytes)
	}
	d.stats.CacheWrites++
	d.stats.CacheBytes += bytes
	d.res.Acquire(d.CacheCost(bytes, extents), done)
	return nil
}

// WriteDisk schedules a write-through to disk: buffer-cache absorption
// followed by the platter write.
func (d *Disk) WriteDisk(bytes, extents int64, done func()) error {
	if bytes < 0 {
		return fmt.Errorf("disksim: negative write size %d", bytes)
	}
	d.stats.DiskWrites++
	d.stats.DiskBytes += bytes
	d.res.Acquire(d.CacheCost(bytes, extents)+d.DiskCost(bytes, extents), done)
	return nil
}

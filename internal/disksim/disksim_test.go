package disksim

import (
	"testing"

	"parafile/internal/sim"
)

func testConfig() Config {
	return Config{
		CacheBandwidthBytesPerSec: 200 * 1000 * 1000, // 5 ns/byte
		CacheOverheadNs:           10 * sim.Microsecond,
		DiskBandwidthBytesPerSec:  20 * 1000 * 1000, // 50 ns/byte
		DiskOverheadNs:            500 * sim.Microsecond,
		FragmentPenaltyNs:         1 * sim.Microsecond,
	}
}

func TestCacheCost(t *testing.T) {
	k := sim.NewKernel()
	d := New(k, testConfig())
	// 1000 bytes, 1 extent: 10µs + 5µs.
	if got := d.CacheCost(1000, 1); got != 15*sim.Microsecond {
		t.Errorf("CacheCost = %d, want 15µs", got)
	}
	// 11 extents add 10 fragment penalties.
	if got := d.CacheCost(1000, 11); got != 25*sim.Microsecond {
		t.Errorf("fragmented CacheCost = %d, want 25µs", got)
	}
	// Zero extents are clamped to one.
	if got := d.CacheCost(0, 0); got != 10*sim.Microsecond {
		t.Errorf("empty CacheCost = %d, want overhead only", got)
	}
}

func TestDiskCost(t *testing.T) {
	k := sim.NewKernel()
	d := New(k, testConfig())
	// 1000 bytes sequential: 500µs + 50µs.
	if got := d.DiskCost(1000, 1); got != 550*sim.Microsecond {
		t.Errorf("DiskCost = %d, want 550µs", got)
	}
}

func TestWriteCacheCompletion(t *testing.T) {
	k := sim.NewKernel()
	d := New(k, testConfig())
	var doneAt int64 = -1
	k.At(0, func() {
		if err := d.WriteCache(1000, 1, func() { doneAt = k.Now() }); err != nil {
			t.Error(err)
		}
	})
	k.Run()
	if doneAt != 15*sim.Microsecond {
		t.Errorf("cache write done at %d, want 15µs", doneAt)
	}
	if s := d.Stats(); s.CacheWrites != 1 || s.CacheBytes != 1000 {
		t.Errorf("stats = %+v", s)
	}
}

func TestWriteDiskIncludesCachePass(t *testing.T) {
	k := sim.NewKernel()
	d := New(k, testConfig())
	var doneAt int64 = -1
	k.At(0, func() { d.WriteDisk(1000, 1, func() { doneAt = k.Now() }) })
	k.Run()
	// Cache pass (15µs) + disk pass (550µs).
	if doneAt != 565*sim.Microsecond {
		t.Errorf("disk write done at %d, want 565µs", doneAt)
	}
}

func TestWritesSerialize(t *testing.T) {
	k := sim.NewKernel()
	d := New(k, testConfig())
	var times []int64
	k.At(0, func() {
		d.WriteCache(1000, 1, func() { times = append(times, k.Now()) })
		d.WriteCache(1000, 1, func() { times = append(times, k.Now()) })
	})
	k.Run()
	if len(times) != 2 || times[0] != 15*sim.Microsecond || times[1] != 30*sim.Microsecond {
		t.Errorf("serialized writes at %v, want [15µs 30µs]", times)
	}
}

func TestWriteValidation(t *testing.T) {
	k := sim.NewKernel()
	d := New(k, testConfig())
	if err := d.WriteCache(-1, 1, nil); err == nil {
		t.Error("negative cache write accepted")
	}
	if err := d.WriteDisk(-1, 1, nil); err == nil {
		t.Error("negative disk write accepted")
	}
}

func TestFragmentationOrdering(t *testing.T) {
	// More extents must never be cheaper, and disk writes must
	// dominate cache writes of the same shape.
	k := sim.NewKernel()
	d := New(k, IDE2002())
	for _, bytes := range []int64{0, 512, 64 * 1024, 1024 * 1024} {
		if d.CacheCost(bytes, 100) < d.CacheCost(bytes, 1) {
			t.Errorf("fragmented cache write cheaper at %d bytes", bytes)
		}
		if d.DiskCost(bytes, 1) <= d.CacheCost(bytes, 1) {
			t.Errorf("disk write not dominating cache write at %d bytes", bytes)
		}
	}
}

// Package mpiio implements an MPI-IO-flavoured interface on top of the
// parallel file model, substantiating §3's claim that "MPI data types
// can be built on top of" nested FALLS and that the MPI-IO file model
// "can be implemented using our file model and mappings": derived
// datatypes (contiguous, vector, indexed, subarray), file views set
// from a displacement and a filetype, linear read/write through the
// view, and pack/unpack.
package mpiio

import (
	"fmt"

	"parafile/internal/arrayutil"
	"parafile/internal/falls"
	"parafile/internal/part"
	"parafile/internal/redist"
)

// Datatype describes a byte selection within a repeating extent — the
// MPI typemap, represented as a nested FALLS set.
type Datatype struct {
	set    falls.Set
	extent int64
}

// Set returns the underlying nested FALLS selection (per extent).
func (d *Datatype) Set() falls.Set { return d.set }

// Extent returns the datatype's extent in bytes.
func (d *Datatype) Extent() int64 { return d.extent }

// Size returns the number of selected bytes per extent.
func (d *Datatype) Size() int64 { return d.set.Size() }

// Contiguous builds the datatype of count consecutive elements of
// elemSize bytes.
func Contiguous(count, elemSize int64) (*Datatype, error) {
	if count < 1 || elemSize < 1 {
		return nil, fmt.Errorf("mpiio: Contiguous(%d, %d): arguments must be positive", count, elemSize)
	}
	n := count * elemSize
	return &Datatype{
		set:    falls.Set{falls.Leaf(falls.FALLS{L: 0, R: n - 1, S: n, N: 1})},
		extent: n,
	}, nil
}

// Vector builds the MPI vector type: count blocks of blocklen
// elements, the block starts stride elements apart.
func Vector(count, blocklen, stride, elemSize int64) (*Datatype, error) {
	if count < 1 || blocklen < 1 || elemSize < 1 {
		return nil, fmt.Errorf("mpiio: Vector(%d, %d, %d, %d): arguments must be positive",
			count, blocklen, stride, elemSize)
	}
	if stride < blocklen {
		return nil, fmt.Errorf("mpiio: Vector stride %d smaller than block length %d", stride, blocklen)
	}
	f, err := falls.New(0, blocklen*elemSize-1, stride*elemSize, count)
	if err != nil {
		return nil, err
	}
	return &Datatype{
		set:    falls.Set{falls.Leaf(f)},
		extent: ((count-1)*stride + blocklen) * elemSize,
	}, nil
}

// Indexed builds the MPI indexed type: blocks of the given element
// lengths at the given element displacements. Displacements must be
// non-decreasing and non-overlapping.
func Indexed(blocklens, displs []int64, elemSize int64) (*Datatype, error) {
	if len(blocklens) == 0 || len(blocklens) != len(displs) {
		return nil, fmt.Errorf("mpiio: Indexed needs matching non-empty blocklens and displs")
	}
	if elemSize < 1 {
		return nil, fmt.Errorf("mpiio: non-positive element size %d", elemSize)
	}
	var segs []falls.LineSegment
	var prevEnd int64 = -1
	for i := range blocklens {
		if blocklens[i] < 1 {
			return nil, fmt.Errorf("mpiio: non-positive block length %d", blocklens[i])
		}
		l := displs[i] * elemSize
		r := l + blocklens[i]*elemSize - 1
		if l <= prevEnd {
			return nil, fmt.Errorf("mpiio: Indexed blocks overlap or are unsorted at block %d", i)
		}
		segs = append(segs, falls.LineSegment{L: l, R: r})
		prevEnd = r
	}
	return &Datatype{
		set:    falls.LeavesToSet(segs),
		extent: prevEnd + 1,
	}, nil
}

// Subarray builds the MPI subarray type over a row-major array: the
// rectangular box [starts, starts+counts) of the full shape. Its
// extent is the whole array, as in MPI.
func Subarray(dims, starts, counts []int64, elemSize int64) (*Datatype, error) {
	shape, err := arrayutil.NewShape(elemSize, dims...)
	if err != nil {
		return nil, err
	}
	set, err := shape.Subarray(starts, counts)
	if err != nil {
		return nil, err
	}
	if set == nil {
		// Whole array: dense selection.
		set = falls.Set{falls.Leaf(falls.FALLS{L: 0, R: shape.Bytes() - 1, S: shape.Bytes(), N: 1})}
	}
	return &Datatype{set: set, extent: shape.Bytes()}, nil
}

// Darray builds the MPI_Type_create_darray equivalent: the filetype
// selecting one process's portion of a distributed multidimensional
// array — the standard MPI interface for exactly the distributions the
// paper's file model optimizes. rank indexes the process grid in
// row-major order; the spec carries dims, element size and the
// per-dimension distributions.
func Darray(rank int64, spec part.ArraySpec) (*Datatype, error) {
	pat, err := part.NDArray(spec)
	if err != nil {
		return nil, err
	}
	if rank < 0 || rank >= int64(pat.Len()) {
		return nil, fmt.Errorf("mpiio: rank %d out of range [0,%d)", rank, pat.Len())
	}
	return &Datatype{
		set:    pat.Element(int(rank)).Set.Clone(),
		extent: spec.TotalBytes(),
	}, nil
}

// NestedStrided builds the Galley-style nested-strided type the paper
// compares against (§2): count repetitions of an inner datatype, the
// repetitions stride elements apart (in bytes of the inner's extent
// granularity). Arbitrary nesting depth falls out of composing it.
func NestedStrided(count int64, strideBytes int64, inner *Datatype) (*Datatype, error) {
	if count < 1 {
		return nil, fmt.Errorf("mpiio: non-positive count %d", count)
	}
	if inner == nil || inner.Size() == 0 {
		return nil, fmt.Errorf("mpiio: nil or empty inner datatype")
	}
	if strideBytes < inner.Extent() {
		return nil, fmt.Errorf("mpiio: stride %d smaller than inner extent %d", strideBytes, inner.Extent())
	}
	outer, err := falls.New(0, inner.Extent()-1, strideBytes, count)
	if err != nil {
		return nil, err
	}
	member, err := falls.NewNested(outer, inner.set.Clone())
	if err != nil {
		return nil, err
	}
	return &Datatype{
		set:    falls.Set{member},
		extent: (count-1)*strideBytes + inner.Extent(),
	}, nil
}

// Pack copies the datatype's selected bytes (count repetitions of the
// extent) out of src into a contiguous buffer — MPI_Pack on top of the
// §8 gather.
func Pack(dst, src []byte, d *Datatype, count int64) (int64, error) {
	var pos int64
	for k := int64(0); k < count; k++ {
		base := k * d.extent
		if base+d.extent > int64(len(src)) {
			return pos, fmt.Errorf("mpiio: pack source holds %d bytes, need %d", len(src), base+d.extent)
		}
		n, err := redist.GatherSet(dst[pos:], src[base:base+d.extent], d.set, 0, d.extent-1)
		pos += n
		if err != nil {
			return pos, err
		}
	}
	return pos, nil
}

// Unpack is the inverse of Pack — MPI_Unpack on top of the §8 scatter.
func Unpack(dst, src []byte, d *Datatype, count int64) (int64, error) {
	var pos int64
	for k := int64(0); k < count; k++ {
		base := k * d.extent
		if base+d.extent > int64(len(dst)) {
			return pos, fmt.Errorf("mpiio: unpack destination holds %d bytes, need %d", len(dst), base+d.extent)
		}
		n, err := redist.ScatterSet(dst[base:base+d.extent], src[pos:], d.set, 0, d.extent-1)
		pos += n
		if err != nil {
			return pos, err
		}
	}
	return pos, nil
}

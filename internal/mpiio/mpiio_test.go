package mpiio

import (
	"bytes"
	"math/rand"
	"testing"

	"parafile/internal/part"
)

func TestContiguous(t *testing.T) {
	d, err := Contiguous(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() != 12 || d.Extent() != 12 {
		t.Errorf("Size=%d Extent=%d, want 12, 12", d.Size(), d.Extent())
	}
	if _, err := Contiguous(0, 4); err == nil {
		t.Error("zero count accepted")
	}
}

func TestVector(t *testing.T) {
	// 3 blocks of 2 elements, stride 5 elements, 4-byte elements:
	// selects bytes [0,7], [20,27], [40,47].
	d, err := Vector(3, 2, 5, 4)
	if err != nil {
		t.Fatal(err)
	}
	if d.Size() != 24 {
		t.Errorf("Size = %d, want 24", d.Size())
	}
	if d.Extent() != 48 {
		t.Errorf("Extent = %d, want 48", d.Extent())
	}
	off := d.Set().Offsets()
	if off[0] != 0 || off[8] != 20 || off[16] != 40 {
		t.Errorf("vector offsets wrong: %v", off)
	}
	if _, err := Vector(3, 4, 2, 1); err == nil {
		t.Error("stride < blocklen accepted")
	}
}

func TestIndexed(t *testing.T) {
	d, err := Indexed([]int64{2, 1}, []int64{0, 5}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Blocks: elements [0,2) and [5,6) of 2-byte elements: bytes
	// {0..3, 10..11}.
	want := []int64{0, 1, 2, 3, 10, 11}
	got := d.Set().Offsets()
	if len(got) != len(want) {
		t.Fatalf("indexed offsets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("indexed offsets = %v, want %v", got, want)
		}
	}
	if d.Extent() != 12 {
		t.Errorf("Extent = %d, want 12", d.Extent())
	}
	if _, err := Indexed([]int64{2, 2}, []int64{0, 1}, 1); err == nil {
		t.Error("overlapping blocks accepted")
	}
	if _, err := Indexed(nil, nil, 1); err == nil {
		t.Error("empty blocks accepted")
	}
}

func TestSubarrayType(t *testing.T) {
	// 4×4 array of 1-byte elements, box rows 1-2 × cols 1-2.
	d, err := Subarray([]int64{4, 4}, []int64{1, 1}, []int64{2, 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{5, 6, 9, 10}
	got := d.Set().Offsets()
	if len(got) != len(want) {
		t.Fatalf("subarray offsets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("subarray offsets = %v, want %v", got, want)
		}
	}
	if d.Extent() != 16 {
		t.Errorf("Extent = %d, want 16 (whole array)", d.Extent())
	}
	// The whole array as a subarray is dense.
	full, err := Subarray([]int64{4, 4}, []int64{0, 0}, []int64{4, 4}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if full.Size() != 16 {
		t.Errorf("full subarray size = %d, want 16", full.Size())
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	d, _ := Vector(4, 1, 3, 2) // 4 blocks of 2 bytes every 6
	src := make([]byte, 3*d.Extent())
	rand.New(rand.NewSource(1)).Read(src)
	packed := make([]byte, 3*d.Size())
	n, err := Pack(packed, src, d, 3)
	if err != nil || n != int64(len(packed)) {
		t.Fatalf("Pack = %d, %v; want %d", n, err, len(packed))
	}
	out := make([]byte, len(src))
	n, err = Unpack(out, packed, d, 3)
	if err != nil || n != int64(len(packed)) {
		t.Fatalf("Unpack = %d, %v", n, err)
	}
	// Selected bytes equal, unselected zero.
	for k := int64(0); k < 3; k++ {
		base := k * d.Extent()
		for o := int64(0); o < d.Extent(); o++ {
			sel := d.Set().Contains(o)
			if sel && out[base+o] != src[base+o] {
				t.Fatalf("packed byte %d lost", base+o)
			}
			if !sel && out[base+o] != 0 {
				t.Fatalf("unselected byte %d written", base+o)
			}
		}
	}
	// Short source fails cleanly.
	if _, err := Pack(packed, src[:5], d, 3); err == nil {
		t.Error("short pack source accepted")
	}
	if _, err := Unpack(out[:5], packed, d, 3); err == nil {
		t.Error("short unpack destination accepted")
	}
}

// TestFileViewWriteRead: writing a matrix column through a vector view
// lands in the right file bytes, and reads back linearly.
func TestFileViewWriteRead(t *testing.T) {
	const rows, cols = 6, 8
	f := NewFile(nil)
	// View: column 2 of a rows×cols byte matrix.
	colType, err := Vector(rows, 1, cols, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.SetView(2, colType); err != nil {
		t.Fatal(err)
	}
	col := []byte{10, 20, 30, 40, 50, 60}
	n, err := f.WriteAt(col, 0)
	if err != nil || n != rows {
		t.Fatalf("WriteAt = %d, %v", n, err)
	}
	// The file must now have the column at offsets 2, 10, 18, ...
	for r := 0; r < rows; r++ {
		off := 2 + r*cols
		if f.Bytes()[off] != col[r] {
			t.Errorf("file byte %d = %d, want %d", off, f.Bytes()[off], col[r])
		}
	}
	// Read it back through the view.
	out := make([]byte, rows)
	n, err = f.ReadAt(out, 0)
	if err != nil || n != rows {
		t.Fatalf("ReadAt = %d, %v", n, err)
	}
	if !bytes.Equal(out, col) {
		t.Errorf("view read = %v, want %v", out, col)
	}
}

// TestFileViewTiling: view offsets beyond one extent continue into the
// next tile of the filetype.
func TestFileViewTiling(t *testing.T) {
	f := NewFile(nil)
	d, _ := Vector(2, 1, 2, 1) // selects bytes {0, 2} of each 3-byte extent... extent = 3
	if d.Extent() != 3 {
		t.Fatalf("extent = %d", d.Extent())
	}
	if err := f.SetView(0, d); err != nil {
		t.Fatal(err)
	}
	// 6 view bytes span 3 tiles: file offsets 0,2, 3,5, 6,8.
	data := []byte{1, 2, 3, 4, 5, 6}
	if _, err := f.WriteAt(data, 0); err != nil {
		t.Fatal(err)
	}
	wantFile := []byte{1, 0, 2, 3, 0, 4, 5, 0, 6}
	if !bytes.Equal(f.Bytes(), wantFile) {
		t.Errorf("file = %v, want %v", f.Bytes(), wantFile)
	}
	// Unaligned view window.
	out := make([]byte, 3)
	if _, err := f.ReadAt(out, 2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, []byte{3, 4, 5}) {
		t.Errorf("window read = %v, want [3 4 5]", out)
	}
}

// TestPropertyFileViewOracle: view I/O agrees with a per-byte oracle
// built from the datatype's offsets, for random vector/indexed types.
func TestPropertyFileViewOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(110))
	for iter := 0; iter < 60; iter++ {
		var d *Datatype
		var err error
		if rng.Intn(2) == 0 {
			d, err = Vector(1+rng.Int63n(4), 1+rng.Int63n(3), 4+rng.Int63n(4), 1+rng.Int63n(2))
		} else {
			d, err = Indexed([]int64{1 + rng.Int63n(2), 1 + rng.Int63n(2)},
				[]int64{0, 3 + rng.Int63n(3)}, 1+rng.Int63n(2))
		}
		if err != nil {
			t.Fatal(err)
		}
		disp := rng.Int63n(5)
		f := NewFile(nil)
		if err := f.SetView(disp, d); err != nil {
			t.Fatal(err)
		}
		// Oracle: view offset -> file offset.
		offs := d.Set().Offsets()
		fileOff := func(v int64) int64 {
			k := v / d.Size()
			return disp + k*d.Extent() + offs[v%d.Size()]
		}
		span := 3*d.Size() + 1
		data := make([]byte, span)
		rng.Read(data)
		start := rng.Int63n(d.Size())
		if _, err := f.WriteAt(data, start); err != nil {
			t.Fatal(err)
		}
		for v := int64(0); v < span; v++ {
			fo := fileOff(start + v)
			if f.Bytes()[fo] != data[v] {
				t.Fatalf("iter %d: view byte %d (file %d) = %d, want %d",
					iter, start+v, fo, f.Bytes()[fo], data[v])
			}
		}
		out := make([]byte, span)
		if _, err := f.ReadAt(out, start); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, data) {
			t.Fatalf("iter %d: read-back differs", iter)
		}
	}
}

func TestSetViewValidation(t *testing.T) {
	f := NewFile(nil)
	if err := f.SetView(-1, nil); err == nil {
		t.Error("negative displacement accepted")
	}
	if err := f.SetView(0, nil); err != nil {
		t.Errorf("trivial view rejected: %v", err)
	}
	if _, err := f.WriteAt([]byte{1}, -1); err == nil {
		t.Error("negative offset accepted")
	}
	// Trivial view with displacement writes linearly.
	f.SetView(2, nil)
	if _, err := f.WriteAt([]byte{7, 8}, 1); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(f.Bytes(), []byte{0, 0, 0, 7, 8}) {
		t.Errorf("trivial view write = %v", f.Bytes())
	}
}

// TestNestedStrided: Galley-style nested strided access — blocks of
// blocks — selects exactly the composed byte set.
func TestNestedStrided(t *testing.T) {
	// Inner: 2 bytes every 4, twice (bytes {0,1,4,5}, extent 6).
	inner, err := Vector(2, 2, 4, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Outer: that pattern three times, every 10 bytes.
	d, err := NestedStrided(3, 10, inner)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 1, 4, 5, 10, 11, 14, 15, 20, 21, 24, 25}
	got := d.Set().Offsets()
	if len(got) != len(want) {
		t.Fatalf("nested strided offsets = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("nested strided offsets = %v, want %v", got, want)
		}
	}
	if d.Extent() != 26 {
		t.Errorf("extent = %d, want 26", d.Extent())
	}
	// Three levels deep.
	d2, err := NestedStrided(2, 32, d)
	if err != nil {
		t.Fatal(err)
	}
	if d2.Size() != 24 || d2.Set().Depth() != 3 {
		t.Errorf("deep nesting: size=%d depth=%d, want 24, 3", d2.Size(), d2.Set().Depth())
	}
	// Validation.
	if _, err := NestedStrided(0, 10, inner); err == nil {
		t.Error("zero count accepted")
	}
	if _, err := NestedStrided(2, 3, inner); err == nil {
		t.Error("stride < extent accepted")
	}
	if _, err := NestedStrided(2, 10, nil); err == nil {
		t.Error("nil inner accepted")
	}
}

// TestDarray: the darray filetype selects exactly the rank's portion
// of the distributed array, matching the partition builder.
func TestDarray(t *testing.T) {
	spec := part.ArraySpec{
		Dims:     []int64{8, 8},
		ElemSize: 1,
		Dists:    []part.DimDist{{Kind: part.Block, Procs: 2}, {Kind: part.Block, Procs: 2}},
	}
	pat, err := part.NDArray(spec)
	if err != nil {
		t.Fatal(err)
	}
	for rank := int64(0); rank < 4; rank++ {
		ft, err := Darray(rank, spec)
		if err != nil {
			t.Fatal(err)
		}
		if ft.Extent() != 64 {
			t.Errorf("rank %d extent = %d, want 64", rank, ft.Extent())
		}
		want := pat.Element(int(rank)).Set.Offsets()
		got := ft.Set().Offsets()
		if len(want) != len(got) {
			t.Fatalf("rank %d selects %d bytes, want %d", rank, len(got), len(want))
		}
		for i := range want {
			if want[i] != got[i] {
				t.Fatalf("rank %d selection differs at %d", rank, i)
			}
		}
	}
	if _, err := Darray(4, spec); err == nil {
		t.Error("out-of-range rank accepted")
	}
	// Darray filetypes tile, so they drive collective I/O directly.
	fts := make([]*Datatype, 4)
	data := make([][]byte, 4)
	for r := int64(0); r < 4; r++ {
		fts[r], _ = Darray(r, spec)
		data[r] = make([]byte, fts[r].Size())
		for i := range data[r] {
			data[r][i] = byte(r*40 + int64(i))
		}
	}
	f := NewFile(nil)
	if _, err := CollectiveWrite(f, 0, fts, data, 64); err != nil {
		t.Fatalf("darray collective write: %v", err)
	}
	if f.Len() != 64 {
		t.Errorf("file length %d, want 64", f.Len())
	}
}

package mpiio

import (
	"fmt"

	"parafile/internal/falls"
)

// etype.go adds MPI's elementary-type addressing: an MPI-IO view is
// (displacement, etype, filetype), and all offsets and counts are in
// etype units, not bytes. The byte-level machinery underneath is the
// nested FALLS view; this layer only scales coordinates, checking that
// the filetype selects whole etype units.

// EView is an etype-addressed view over a file.
type EView struct {
	f         *File
	etypeSize int64
}

// SetViewE installs a view whose offsets are counted in etype units of
// the given size. The filetype's selection must consist of whole etype
// units.
func (f *File) SetViewE(disp int64, etypeSize int64, filetype *Datatype) (*EView, error) {
	if etypeSize < 1 {
		return nil, fmt.Errorf("mpiio: non-positive etype size %d", etypeSize)
	}
	if filetype != nil {
		if filetype.Size()%etypeSize != 0 {
			return nil, fmt.Errorf("mpiio: filetype selects %d bytes, not a multiple of the %d-byte etype",
				filetype.Size(), etypeSize)
		}
		// Every selected run must cover whole etype units.
		ok := true
		filetype.Set().Walk(func(seg falls.LineSegment) bool {
			if seg.Len()%etypeSize != 0 {
				ok = false
				return false
			}
			return true
		})
		if !ok {
			return nil, fmt.Errorf("mpiio: filetype runs are not etype aligned")
		}
	}
	if err := f.SetView(disp, filetype); err != nil {
		return nil, err
	}
	return &EView{f: f, etypeSize: etypeSize}, nil
}

// WriteAtE writes count etypes from buf at etype offset off.
func (v *EView) WriteAtE(buf []byte, off int64) (int64, error) {
	if int64(len(buf))%v.etypeSize != 0 {
		return 0, fmt.Errorf("mpiio: buffer of %d bytes is not whole etypes of %d", len(buf), v.etypeSize)
	}
	n, err := v.f.WriteAt(buf, off*v.etypeSize)
	return n / v.etypeSize, err
}

// ReadAtE reads len(buf)/etypeSize etypes at etype offset off.
func (v *EView) ReadAtE(buf []byte, off int64) (int64, error) {
	if int64(len(buf))%v.etypeSize != 0 {
		return 0, fmt.Errorf("mpiio: buffer of %d bytes is not whole etypes of %d", len(buf), v.etypeSize)
	}
	n, err := v.f.ReadAt(buf, off*v.etypeSize)
	return n / v.etypeSize, err
}

package mpiio

import (
	"fmt"

	"parafile/internal/part"
	"parafile/internal/redist"
)

// collective.go implements two-phase collective I/O on top of the
// redistribution machinery — the classic ROMIO optimization expressed
// as a memory-to-memory redistribution between the ranks' logical
// partition and a contiguous aggregator partition. It substantiates
// §3's claim that the model covers "any combination of
// redistributions: disk-disk, disk-memory, memory-disk,
// memory-memory".

// CollectiveStats reports what the two-phase exchange saved.
type CollectiveStats struct {
	// Ranks is the number of participating ranks.
	Ranks int
	// ExchangedBytes is the phase-1 traffic (rank buffers to
	// aggregator domains).
	ExchangedBytes int64
	// FileWrites is the number of contiguous file accesses in phase 2
	// (one per non-empty aggregator domain).
	FileWrites int
	// DirectSegments is the number of non-contiguous file accesses
	// independent I/O would have needed for the same data.
	DirectSegments int64
}

// viewPartition assembles the ranks' filetypes into a partitioning
// pattern: together the types must tile their common extent exactly.
func viewPartition(disp int64, filetypes []*Datatype) (*part.File, int64, error) {
	if len(filetypes) == 0 {
		return nil, 0, fmt.Errorf("mpiio: no filetypes")
	}
	extent := filetypes[0].Extent()
	elems := make([]part.Element, len(filetypes))
	for r, ft := range filetypes {
		if ft == nil {
			return nil, 0, fmt.Errorf("mpiio: rank %d has a nil filetype", r)
		}
		if ft.Extent() != extent {
			return nil, 0, fmt.Errorf("mpiio: rank %d extent %d differs from %d",
				r, ft.Extent(), extent)
		}
		elems[r] = part.Element{Name: fmt.Sprintf("rank%d", r), Set: ft.Set()}
	}
	pat, err := part.NewPattern(elems...)
	if err != nil {
		return nil, 0, fmt.Errorf("mpiio: filetypes do not tile the extent: %w", err)
	}
	vf, err := part.NewFile(disp, pat)
	if err != nil {
		return nil, 0, err
	}
	return vf, extent, nil
}

// CollectiveWrite writes each rank's buffer through its filetype using
// two-phase I/O: the data is first redistributed into contiguous
// aggregator domains (one per rank), then each domain is written to
// the file with a single contiguous access. length is the number of
// file bytes covered (a multiple of the filetype extent); data[r]
// holds rank r's bytes in view-linear order.
func CollectiveWrite(f *File, disp int64, filetypes []*Datatype, data [][]byte, length int64) (*CollectiveStats, error) {
	vf, extent, err := viewPartition(disp, filetypes)
	if err != nil {
		return nil, err
	}
	if length < 1 || length%extent != 0 {
		return nil, fmt.Errorf("mpiio: length %d is not a positive multiple of the extent %d",
			length, extent)
	}
	if len(data) != len(filetypes) {
		return nil, fmt.Errorf("mpiio: %d buffers for %d ranks", len(data), len(filetypes))
	}
	aggPat, err := part.Block1D(length, len(filetypes))
	if err != nil {
		return nil, err
	}
	aggFile, err := part.NewFile(disp, aggPat)
	if err != nil {
		return nil, err
	}
	plan, err := redist.NewPlan(vf, aggFile)
	if err != nil {
		return nil, err
	}
	aggBufs := make([][]byte, aggPat.Len())
	for i := 0; i < aggPat.Len(); i++ {
		aggBufs[i] = make([]byte, aggFile.ElementBytes(i, length))
	}
	if err := plan.Execute(data, aggBufs, length); err != nil {
		return nil, err
	}

	stats := &CollectiveStats{Ranks: len(filetypes)}
	for _, tr := range plan.Transfers {
		stats.ExchangedBytes += tr.BytesPerPeriod() * (length / plan.Period)
	}
	// Phase 2: one contiguous write per aggregator domain.
	f.grow(disp + length)
	off := disp
	for _, buf := range aggBufs {
		if len(buf) == 0 {
			continue
		}
		copy(f.data[off:off+int64(len(buf))], buf)
		off += int64(len(buf))
		stats.FileWrites++
	}
	for _, ft := range filetypes {
		stats.DirectSegments += ft.Set().SegmentCount() * (length / extent)
	}
	return stats, nil
}

// CollectiveRead is the two-phase read: aggregator domains are read
// contiguously and redistributed into the ranks' view-linear buffers.
func CollectiveRead(f *File, disp int64, filetypes []*Datatype, data [][]byte, length int64) (*CollectiveStats, error) {
	vf, extent, err := viewPartition(disp, filetypes)
	if err != nil {
		return nil, err
	}
	if length < 1 || length%extent != 0 {
		return nil, fmt.Errorf("mpiio: length %d is not a positive multiple of the extent %d",
			length, extent)
	}
	if len(data) != len(filetypes) {
		return nil, fmt.Errorf("mpiio: %d buffers for %d ranks", len(data), len(filetypes))
	}
	aggPat, err := part.Block1D(length, len(filetypes))
	if err != nil {
		return nil, err
	}
	aggFile, err := part.NewFile(disp, aggPat)
	if err != nil {
		return nil, err
	}
	stats := &CollectiveStats{Ranks: len(filetypes)}
	// Phase 1: contiguous reads into aggregator buffers.
	aggBufs := make([][]byte, aggPat.Len())
	off := disp
	for i := 0; i < aggPat.Len(); i++ {
		n := aggFile.ElementBytes(i, length)
		aggBufs[i] = make([]byte, n)
		if off < int64(len(f.data)) {
			copy(aggBufs[i], f.data[off:min64(off+n, int64(len(f.data)))])
		}
		off += n
		if n > 0 {
			stats.FileWrites++ // contiguous file accesses (reads here)
		}
	}
	// Phase 2: redistribute aggregator domains into rank buffers.
	plan, err := redist.NewPlan(aggFile, vf)
	if err != nil {
		return nil, err
	}
	if err := plan.Execute(aggBufs, data, length); err != nil {
		return nil, err
	}
	for _, tr := range plan.Transfers {
		stats.ExchangedBytes += tr.BytesPerPeriod() * (length / plan.Period)
	}
	for _, ft := range filetypes {
		stats.DirectSegments += ft.Set().SegmentCount() * (length / extent)
	}
	return stats, nil
}

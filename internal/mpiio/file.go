package mpiio

import (
	"fmt"

	"parafile/internal/falls"
)

// File is an MPI-IO style file handle over an in-memory byte store: a
// view — displacement plus filetype — turns subsequent reads and
// writes into accesses of the selected bytes only, addressed linearly
// (§3: "non-contiguous I/O is realized by setting a linear view on the
// data set and accessing it contiguously").
type File struct {
	data []byte

	disp     int64
	filetype *Datatype
}

// NewFile wraps initial contents (which may be nil).
func NewFile(initial []byte) *File {
	return &File{data: append([]byte(nil), initial...)}
}

// Bytes returns the file's current contents.
func (f *File) Bytes() []byte { return f.data }

// Len returns the file's current size.
func (f *File) Len() int64 { return int64(len(f.data)) }

// SetView installs a view: the filetype tiles the file starting at the
// displacement, and view offsets address its selected bytes in order.
// A nil filetype restores the trivial all-bytes view.
func (f *File) SetView(disp int64, filetype *Datatype) error {
	if disp < 0 {
		return fmt.Errorf("mpiio: negative displacement %d", disp)
	}
	if filetype != nil && filetype.Size() == 0 {
		return fmt.Errorf("mpiio: empty filetype")
	}
	f.disp = disp
	f.filetype = filetype
	return nil
}

// grow ensures the file holds at least n bytes.
func (f *File) grow(n int64) {
	if int64(len(f.data)) < n {
		grown := make([]byte, n)
		copy(grown, f.data)
		f.data = grown
	}
}

// viewWalk iterates the file-space segments corresponding to view
// offsets [off, off+n), in order, calling fn with the file segment and
// the view position it starts at.
func (f *File) viewWalk(off, n int64, fn func(fileSeg falls.LineSegment, viewPos int64) error) error {
	if off < 0 || n < 0 {
		return fmt.Errorf("mpiio: negative view range (%d, %d)", off, n)
	}
	if n == 0 {
		return nil
	}
	if f.filetype == nil {
		return fn(falls.LineSegment{L: f.disp + off, R: f.disp + off + n - 1}, off)
	}
	size := f.filetype.Size()
	extent := f.filetype.Extent()
	end := off + n - 1
	pos := (off / size) * size // view position at the start of the first relevant tile
	for k := off / size; pos <= end; k++ {
		base := f.disp + k*extent
		var err error
		f.filetype.set.Walk(func(seg falls.LineSegment) bool {
			segStart := pos
			segEnd := pos + seg.Len() - 1
			pos = segEnd + 1
			if segEnd < off {
				return true
			}
			if segStart > end {
				return false
			}
			lo := max64(segStart, off)
			hi := min64(segEnd, end)
			fileSeg := falls.LineSegment{
				L: base + seg.L + (lo - segStart),
				R: base + seg.L + (hi - segStart),
			}
			if e := fn(fileSeg, lo); e != nil {
				err = e
				return false
			}
			return true
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// WriteAt writes p through the view at view offset off, growing the
// file as needed. It returns the bytes written.
func (f *File) WriteAt(p []byte, off int64) (int64, error) {
	var written int64
	err := f.viewWalk(off, int64(len(p)), func(seg falls.LineSegment, viewPos int64) error {
		f.grow(seg.R + 1)
		copy(f.data[seg.L:seg.R+1], p[viewPos-off:viewPos-off+seg.Len()])
		written += seg.Len()
		return nil
	})
	return written, err
}

// ReadAt reads len(p) view bytes starting at view offset off. Bytes
// beyond the current end of file read as zero (the file is conceptually
// sparse).
func (f *File) ReadAt(p []byte, off int64) (int64, error) {
	var read int64
	err := f.viewWalk(off, int64(len(p)), func(seg falls.LineSegment, viewPos int64) error {
		dst := p[viewPos-off : viewPos-off+seg.Len()]
		for i := range dst {
			dst[i] = 0
		}
		if seg.L < int64(len(f.data)) {
			hi := min64(seg.R, int64(len(f.data))-1)
			copy(dst, f.data[seg.L:hi+1])
		}
		read += seg.Len()
		return nil
	})
	return read, err
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

package mpiio

import (
	"bytes"
	"encoding/binary"
	"testing"
)

// TestEtypeViewInt32Column: a column of 4-byte integers addressed in
// etype units.
func TestEtypeViewInt32Column(t *testing.T) {
	const rows, cols = 6, 8 // matrix of int32
	f := NewFile(make([]byte, rows*cols*4))
	colType, err := Vector(rows, 1, cols, 4) // one int32 per row
	if err != nil {
		t.Fatal(err)
	}
	v, err := f.SetViewE(0, 4, colType)
	if err != nil {
		t.Fatal(err)
	}
	// Write int32 values 100..105 at etype offsets 0..5.
	buf := make([]byte, rows*4)
	for i := 0; i < rows; i++ {
		binary.LittleEndian.PutUint32(buf[i*4:], uint32(100+i))
	}
	n, err := v.WriteAtE(buf, 0)
	if err != nil || n != rows {
		t.Fatalf("WriteAtE = %d etypes, %v; want %d", n, err, rows)
	}
	// The file holds the values in column 0 of each row.
	for r := 0; r < rows; r++ {
		got := binary.LittleEndian.Uint32(f.Bytes()[r*cols*4:])
		if got != uint32(100+r) {
			t.Errorf("row %d = %d, want %d", r, got, 100+r)
		}
	}
	// Read back two etypes starting at etype offset 2.
	out := make([]byte, 2*4)
	n, err = v.ReadAtE(out, 2)
	if err != nil || n != 2 {
		t.Fatalf("ReadAtE = %d, %v", n, err)
	}
	if !bytes.Equal(out, buf[8:16]) {
		t.Errorf("etype read = %v, want %v", out, buf[8:16])
	}
}

func TestEtypeValidation(t *testing.T) {
	f := NewFile(nil)
	ft, _ := Vector(4, 1, 2, 1) // 1-byte runs
	if _, err := f.SetViewE(0, 0, ft); err == nil {
		t.Error("zero etype accepted")
	}
	// 1-byte runs cannot carry a 4-byte etype.
	if _, err := f.SetViewE(0, 4, ft); err == nil {
		t.Error("unaligned filetype accepted")
	}
	// Size multiple but runs unaligned: 4 runs of 1 byte = 4 bytes
	// total (multiple of 4) yet each run splits the etype.
	ft2, _ := Vector(4, 1, 4, 1)
	if ft2.Size()%4 != 0 {
		t.Fatal("test setup: size not multiple")
	}
	if _, err := f.SetViewE(0, 4, ft2); err == nil {
		t.Error("run-splitting filetype accepted")
	}
	// Buffers must be whole etypes.
	ok, _ := Vector(4, 1, 2, 4)
	v, err := f.SetViewE(0, 4, ok)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v.WriteAtE(make([]byte, 6), 0); err == nil {
		t.Error("partial-etype buffer accepted for write")
	}
	if _, err := v.ReadAtE(make([]byte, 3), 0); err == nil {
		t.Error("partial-etype buffer accepted for read")
	}
}

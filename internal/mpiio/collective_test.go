package mpiio

import (
	"bytes"
	"math/rand"
	"testing"
)

// columnFiletypes builds one column-block subarray filetype per rank
// over a rows×cols byte matrix.
func columnFiletypes(t *testing.T, rows, cols, ranks int64) []*Datatype {
	t.Helper()
	per := cols / ranks
	fts := make([]*Datatype, ranks)
	for r := int64(0); r < ranks; r++ {
		ft, err := Subarray([]int64{rows, cols}, []int64{0, r * per}, []int64{rows, per}, 1)
		if err != nil {
			t.Fatal(err)
		}
		fts[r] = ft
	}
	return fts
}

// TestCollectiveWriteMatchesIndependent: two-phase and independent
// writes produce the same file bytes.
func TestCollectiveWriteMatchesIndependent(t *testing.T) {
	const rows, cols, ranks = 8, 16, 4
	fts := columnFiletypes(t, rows, cols, ranks)
	rng := rand.New(rand.NewSource(130))
	data := make([][]byte, ranks)
	for r := range data {
		data[r] = make([]byte, fts[r].Size())
		rng.Read(data[r])
	}

	collective := NewFile(nil)
	stats, err := CollectiveWrite(collective, 0, fts, data, rows*cols)
	if err != nil {
		t.Fatal(err)
	}

	independent := NewFile(nil)
	for r := range fts {
		if err := independent.SetView(0, fts[r]); err != nil {
			t.Fatal(err)
		}
		if _, err := independent.WriteAt(data[r], 0); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(collective.Bytes(), independent.Bytes()) {
		t.Fatal("collective and independent writes differ")
	}
	// Two-phase turns 8 segments per rank into 1 contiguous write per
	// aggregator.
	if stats.FileWrites != ranks {
		t.Errorf("FileWrites = %d, want %d", stats.FileWrites, ranks)
	}
	if stats.DirectSegments != rows*ranks {
		t.Errorf("DirectSegments = %d, want %d", stats.DirectSegments, rows*ranks)
	}
	if stats.ExchangedBytes != rows*cols {
		t.Errorf("ExchangedBytes = %d, want %d (every byte changes owner or domain)",
			stats.ExchangedBytes, rows*cols)
	}
}

// TestCollectiveReadRoundTrip: collective write then collective read
// restores every rank's buffer.
func TestCollectiveReadRoundTrip(t *testing.T) {
	const rows, cols, ranks = 8, 16, 4
	fts := columnFiletypes(t, rows, cols, ranks)
	rng := rand.New(rand.NewSource(131))
	data := make([][]byte, ranks)
	for r := range data {
		data[r] = make([]byte, fts[r].Size())
		rng.Read(data[r])
	}
	f := NewFile(nil)
	if _, err := CollectiveWrite(f, 0, fts, data, rows*cols); err != nil {
		t.Fatal(err)
	}
	out := make([][]byte, ranks)
	for r := range out {
		out[r] = make([]byte, fts[r].Size())
	}
	if _, err := CollectiveRead(f, 0, fts, out, rows*cols); err != nil {
		t.Fatal(err)
	}
	for r := range out {
		if !bytes.Equal(out[r], data[r]) {
			t.Fatalf("rank %d read-back differs", r)
		}
	}
}

// TestCollectiveMultiplePeriods: vector filetypes that tile the extent
// and repeat over several extents.
func TestCollectiveMultiplePeriods(t *testing.T) {
	// Two ranks interleave 2-byte blocks within a 4-byte extent.
	ft0, err := Vector(1, 2, 2, 1) // bytes {0,1}, extent forced below
	if err != nil {
		t.Fatal(err)
	}
	ft0.extent = 4
	ft1, err := Indexed([]int64{2}, []int64{2}, 1) // bytes {2,3}
	if err != nil {
		t.Fatal(err)
	}
	ft1.extent = 4
	fts := []*Datatype{ft0, ft1}
	const length = 24 // 6 extents
	data := [][]byte{make([]byte, 12), make([]byte, 12)}
	for i := range data[0] {
		data[0][i] = byte(i + 1)
		data[1][i] = byte(100 + i)
	}
	f := NewFile(nil)
	if _, err := CollectiveWrite(f, 0, fts, data, length); err != nil {
		t.Fatal(err)
	}
	want := make([]byte, length)
	for k := 0; k < 6; k++ {
		want[4*k] = byte(2*k + 1)
		want[4*k+1] = byte(2*k + 2)
		want[4*k+2] = byte(100 + 2*k)
		want[4*k+3] = byte(100 + 2*k + 1)
	}
	if !bytes.Equal(f.Bytes(), want) {
		t.Fatalf("file = %v\nwant  %v", f.Bytes(), want)
	}
}

// TestCollectiveWithDisplacement: the file region starts past a
// header.
func TestCollectiveWithDisplacement(t *testing.T) {
	const rows, cols, ranks = 4, 8, 4
	fts := columnFiletypes(t, rows, cols, ranks)
	data := make([][]byte, ranks)
	for r := range data {
		data[r] = make([]byte, fts[r].Size())
		for i := range data[r] {
			data[r][i] = byte(r*50 + i)
		}
	}
	f := NewFile([]byte("HDR!"))
	if _, err := CollectiveWrite(f, 4, fts, data, rows*cols); err != nil {
		t.Fatal(err)
	}
	if string(f.Bytes()[:4]) != "HDR!" {
		t.Fatal("header clobbered")
	}
	out := make([][]byte, ranks)
	for r := range out {
		out[r] = make([]byte, fts[r].Size())
	}
	if _, err := CollectiveRead(f, 4, fts, out, rows*cols); err != nil {
		t.Fatal(err)
	}
	for r := range out {
		if !bytes.Equal(out[r], data[r]) {
			t.Fatalf("rank %d displaced read-back differs", r)
		}
	}
}

func TestCollectiveValidation(t *testing.T) {
	f := NewFile(nil)
	fts := columnFiletypes(t, 4, 8, 4)
	good := make([][]byte, 4)
	for r := range good {
		good[r] = make([]byte, fts[r].Size())
	}
	if _, err := CollectiveWrite(f, 0, nil, nil, 32); err == nil {
		t.Error("no filetypes accepted")
	}
	if _, err := CollectiveWrite(f, 0, fts, good, 33); err == nil {
		t.Error("non-multiple length accepted")
	}
	if _, err := CollectiveWrite(f, 0, fts, good[:2], 32); err == nil {
		t.Error("buffer count mismatch accepted")
	}
	// Overlapping filetypes must be rejected.
	over, _ := Subarray([]int64{4, 8}, []int64{0, 0}, []int64{4, 4}, 1)
	bad := []*Datatype{over, over, over, over}
	if _, err := CollectiveWrite(f, 0, bad, good, 32); err == nil {
		t.Error("overlapping filetypes accepted")
	}
	if _, err := CollectiveRead(f, 0, fts, good[:1], 32); err == nil {
		t.Error("read buffer count mismatch accepted")
	}
}

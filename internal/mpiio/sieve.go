package mpiio

import "parafile/internal/falls"

// sieve.go implements data sieving — the classic optimization for
// independent non-contiguous access that the paper's introduction
// motivates ("the fragmentation of data results in sending lots of
// small messages... message aggregation is possible, but the costs for
// gathering and scattering are not negligible"): instead of touching
// every selected fragment separately, one contiguous region covering
// the access is read, modified in memory, and written back.

// SieveStats reports what a sieved access did, so callers (and the
// benchmarks) can compare against the naive fragment-by-fragment
// access.
type SieveStats struct {
	// Fragments is the number of non-contiguous pieces the access
	// touches — the I/O operations the naive strategy would issue.
	Fragments int64
	// SievedBytes is the size of the contiguous data transferred
	// instead (read plus any write-back).
	SievedBytes int64
	// UsefulBytes is the number of bytes the caller actually accessed.
	UsefulBytes int64
	// Operations is the number of contiguous I/O operations issued
	// (1 for a pure read, 2 for a read-modify-write).
	Operations int64
}

// SievedReadAt reads len(p) view bytes at view offset off using data
// sieving: one contiguous file read spanning the selection, then an
// in-memory gather.
func (f *File) SievedReadAt(p []byte, off int64) (SieveStats, error) {
	var stats SieveStats
	lo, hi, frags, useful, err := f.viewSpan(off, int64(len(p)))
	if err != nil || useful == 0 {
		return stats, err
	}
	stats.Fragments = frags
	stats.UsefulBytes = useful
	// One contiguous read of the covering region.
	region := make([]byte, hi-lo+1)
	if lo < int64(len(f.data)) {
		copy(region, f.data[lo:min64(hi+1, int64(len(f.data)))])
	}
	stats.SievedBytes = hi - lo + 1
	stats.Operations = 1
	// Gather the selected bytes out of the region.
	err = f.viewWalk(off, int64(len(p)), func(seg falls.LineSegment, viewPos int64) error {
		copy(p[viewPos-off:viewPos-off+seg.Len()], region[seg.L-lo:seg.R+1-lo])
		return nil
	})
	return stats, err
}

// SievedWriteAt writes p at view offset off using data sieving: read
// the covering region, scatter the new bytes into it, write it back
// with one contiguous write (a read-modify-write).
func (f *File) SievedWriteAt(p []byte, off int64) (SieveStats, error) {
	var stats SieveStats
	lo, hi, frags, useful, err := f.viewSpan(off, int64(len(p)))
	if err != nil || useful == 0 {
		return stats, err
	}
	stats.Fragments = frags
	stats.UsefulBytes = useful
	f.grow(hi + 1)
	region := make([]byte, hi-lo+1)
	copy(region, f.data[lo:hi+1])
	stats.SievedBytes = 2 * (hi - lo + 1) // read + write back
	stats.Operations = 2
	err = f.viewWalk(off, int64(len(p)), func(seg falls.LineSegment, viewPos int64) error {
		copy(region[seg.L-lo:seg.R+1-lo], p[viewPos-off:viewPos-off+seg.Len()])
		return nil
	})
	if err != nil {
		return stats, err
	}
	copy(f.data[lo:hi+1], region)
	return stats, nil
}

// viewSpan computes the covering file range [lo, hi], the fragment
// count and the useful byte count of a view access.
func (f *File) viewSpan(off, n int64) (lo, hi, frags, useful int64, err error) {
	lo, hi = -1, -1
	err = f.viewWalk(off, n, func(seg falls.LineSegment, viewPos int64) error {
		if lo < 0 {
			lo = seg.L
		}
		hi = seg.R
		frags++
		useful += seg.Len()
		return nil
	})
	return lo, hi, frags, useful, err
}

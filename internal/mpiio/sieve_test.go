package mpiio

import (
	"bytes"
	"math/rand"
	"testing"
)

// TestSievedReadMatchesReadAt: sieving is invisible to the caller.
func TestSievedReadMatchesReadAt(t *testing.T) {
	const rows, cols = 16, 32
	img := make([]byte, rows*cols)
	rand.New(rand.NewSource(160)).Read(img)
	f := NewFile(img)
	colType, err := Vector(rows, 2, cols, 1) // two bytes per row
	if err != nil {
		t.Fatal(err)
	}
	if err := f.SetView(3, colType); err != nil {
		t.Fatal(err)
	}
	plain := make([]byte, colType.Size())
	if _, err := f.ReadAt(plain, 0); err != nil {
		t.Fatal(err)
	}
	sieved := make([]byte, colType.Size())
	stats, err := f.SievedReadAt(sieved, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(plain, sieved) {
		t.Fatal("sieved read returned different data")
	}
	if stats.Fragments != rows {
		t.Errorf("fragments = %d, want %d", stats.Fragments, rows)
	}
	if stats.Operations != 1 {
		t.Errorf("operations = %d, want 1", stats.Operations)
	}
	if stats.UsefulBytes != colType.Size() {
		t.Errorf("useful = %d, want %d", stats.UsefulBytes, colType.Size())
	}
	if stats.SievedBytes <= stats.UsefulBytes {
		t.Errorf("sieving should transfer extra bytes: sieved=%d useful=%d",
			stats.SievedBytes, stats.UsefulBytes)
	}
}

// TestSievedWritePreservesUnselected: the read-modify-write only
// changes the selected bytes.
func TestSievedWritePreservesUnselected(t *testing.T) {
	const rows, cols = 8, 16
	img := make([]byte, rows*cols)
	for i := range img {
		img[i] = 0xEE
	}
	f := NewFile(img)
	colType, err := Vector(rows, 1, cols, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.SetView(5, colType); err != nil {
		t.Fatal(err)
	}
	update := make([]byte, rows)
	for i := range update {
		update[i] = byte(i + 1)
	}
	stats, err := f.SievedWriteAt(update, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Operations != 2 {
		t.Errorf("operations = %d, want 2 (read-modify-write)", stats.Operations)
	}
	for i := 0; i < rows*cols; i++ {
		inColumn := i >= 5 && (i-5)%cols == 0
		switch {
		case inColumn:
			want := byte((i-5)/cols + 1)
			if f.Bytes()[i] != want {
				t.Errorf("selected byte %d = %d, want %d", i, f.Bytes()[i], want)
			}
		case f.Bytes()[i] != 0xEE:
			t.Errorf("unselected byte %d was modified to %d", i, f.Bytes()[i])
		}
	}
}

// TestPropertySieveEquivalence: sieved and plain accesses agree on
// random views, offsets and lengths.
func TestPropertySieveEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(161))
	for iter := 0; iter < 80; iter++ {
		d, err := Vector(1+rng.Int63n(5), 1+rng.Int63n(3), 4+rng.Int63n(5), 1+rng.Int63n(2))
		if err != nil {
			t.Fatal(err)
		}
		span := 3 * d.Extent()
		img := make([]byte, span)
		rng.Read(img)
		fa := NewFile(img)
		fb := NewFile(img)
		fa.SetView(rng.Int63n(3), d)
		fb.SetView(fa.disp, d)
		off := rng.Int63n(d.Size())
		n := 1 + rng.Int63n(2*d.Size())
		data := make([]byte, n)
		rng.Read(data)
		if _, err := fa.WriteAt(data, off); err != nil {
			t.Fatal(err)
		}
		if _, err := fb.SievedWriteAt(data, off); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(fa.Bytes(), fb.Bytes()) {
			t.Fatalf("iter %d: sieved write diverged from plain write", iter)
		}
		ra := make([]byte, n)
		rb := make([]byte, n)
		if _, err := fa.ReadAt(ra, off); err != nil {
			t.Fatal(err)
		}
		if _, err := fb.SievedReadAt(rb, off); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(ra, rb) {
			t.Fatalf("iter %d: sieved read diverged from plain read", iter)
		}
	}
}

// TestSieveAmplification: the stats quantify the §1 trade-off — fewer
// operations, more bytes.
func TestSieveAmplification(t *testing.T) {
	// A sparse view: 1 byte of every 64.
	d, err := Vector(32, 1, 64, 1)
	if err != nil {
		t.Fatal(err)
	}
	f := NewFile(make([]byte, d.Extent()))
	f.SetView(0, d)
	p := make([]byte, d.Size())
	stats, err := f.SievedReadAt(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Fragments != 32 {
		t.Errorf("fragments = %d, want 32", stats.Fragments)
	}
	// Amplification factor ~64x: the sieve reads the whole extent for
	// 32 useful bytes.
	if stats.SievedBytes < 60*stats.UsefulBytes {
		t.Errorf("expected heavy read amplification, got sieved=%d useful=%d",
			stats.SievedBytes, stats.UsefulBytes)
	}
}

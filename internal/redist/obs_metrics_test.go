package redist

import (
	"fmt"
	"strings"
	"testing"

	"parafile/internal/obs"
)

// obs_metrics_test.go checks the observability wiring of plan
// compilation and the two caches: the obs counters must track the
// same scripted access sequences that cache_test.go asserts through
// CacheStats.

func TestCompilePlanMetrics(t *testing.T) {
	src, dst := cachePair(t, 16)
	reg := obs.NewRegistry()

	if _, err := CompilePlan(src, dst, CompileOptions{Workers: 1, Metrics: reg}); err != nil {
		t.Fatal(err)
	}
	if _, err := CompilePlan(src, dst, CompileOptions{Workers: 4, Metrics: reg}); err != nil {
		t.Fatal(err)
	}

	if got := reg.Counter(MetricCompilesSeq).Value(); got != 1 {
		t.Errorf("seq compiles = %d, want 1", got)
	}
	if got := reg.Counter(MetricCompilesPar).Value(); got != 1 {
		t.Errorf("par compiles = %d, want 1", got)
	}
	pairs := uint64(src.Pattern.Len() * dst.Pattern.Len())
	if got := reg.Counter(MetricPairs).Value(); got != 2*pairs {
		t.Errorf("pairs = %d, want %d", got, 2*pairs)
	}
	if got := reg.Counter(MetricPairsNonEmpty).Value(); got == 0 || got > 2*pairs {
		t.Errorf("non-empty pairs = %d, want in (0,%d]", got, 2*pairs)
	}
	raw := reg.Counter(MetricSegmentsRaw).Value()
	coalesced := reg.Counter(MetricSegments).Value()
	if raw == 0 || coalesced == 0 || coalesced > raw {
		t.Errorf("segments raw=%d coalesced=%d, want 0 < coalesced <= raw", raw, coalesced)
	}
	h := reg.Histogram(MetricCompileNs, obs.LatencyBuckets())
	if h.Count() != 2 {
		t.Errorf("compile histogram count = %d, want 2", h.Count())
	}

	// NoCoalesce must report identical raw and post-pass counts.
	reg2 := obs.NewRegistry()
	if _, err := CompilePlan(src, dst, CompileOptions{Workers: 1, NoCoalesce: true, Metrics: reg2}); err != nil {
		t.Fatal(err)
	}
	if r, c := reg2.Counter(MetricSegmentsRaw).Value(), reg2.Counter(MetricSegments).Value(); r != c {
		t.Errorf("NoCoalesce: raw %d != post-pass %d", r, c)
	}
}

func TestCompilePlanSpans(t *testing.T) {
	src, dst := cachePair(t, 8)
	root := obs.StartSpan("test")
	if _, err := CompilePlan(src, dst, CompileOptions{Trace: root}); err != nil {
		t.Fatal(err)
	}
	root.End()
	kids := root.Children()
	if len(kids) != 1 || kids[0].Name() != "redist.compile" {
		t.Fatalf("children = %v", kids)
	}
	var names []string
	for _, c := range kids[0].Children() {
		names = append(names, c.Name())
	}
	want := []string{"mappers", "pairs", "assemble"}
	if fmt.Sprint(names) != fmt.Sprint(want) {
		t.Errorf("compile phases = %v, want %v", names, want)
	}
}

// TestPlanCacheMetricsMatchScriptedSequence drives the same access
// script as TestPlanCacheGetOrCompile (miss, hit, structurally-equal
// hit) and asserts the obs counters agree with CacheStats.
func TestPlanCacheMetricsMatchScriptedSequence(t *testing.T) {
	src, dst := cachePair(t, 8)
	reg := obs.NewRegistry()
	c := NewPlanCache(4, CompileOptions{})
	c.Instrument(reg)

	if _, hit, err := c.GetOrCompile(src, dst); err != nil || hit {
		t.Fatalf("first lookup: hit=%v err=%v", hit, err)
	}
	if _, hit, err := c.GetOrCompile(src, dst); err != nil || !hit {
		t.Fatalf("second lookup: hit=%v err=%v", hit, err)
	}
	src2, dst2 := cachePair(t, 8)
	if _, hit, err := c.GetOrCompile(src2, dst2); err != nil || !hit {
		t.Fatalf("equal-geometry lookup: hit=%v err=%v", hit, err)
	}

	s := c.Stats()
	hits := reg.Counter(planCachePrefix + "_hits_total").Value()
	misses := reg.Counter(planCachePrefix + "_misses_total").Value()
	if hits != s.Hits || misses != s.Misses {
		t.Errorf("obs (hits=%d misses=%d) != CacheStats %+v", hits, misses, s)
	}
	if hits != 2 || misses != 1 {
		t.Errorf("hits=%d misses=%d, want 2 and 1", hits, misses)
	}
	if got := reg.Gauge(planCachePrefix + "_entries").Value(); got != 1 {
		t.Errorf("entries gauge = %d, want 1", got)
	}
	// The miss compiled through the cache's options, which Instrument
	// pointed at the registry.
	if got := reg.Counter(MetricCompilesSeq).Value() + reg.Counter(MetricCompilesPar).Value(); got != 1 {
		t.Errorf("compiles recorded through cache = %d, want 1", got)
	}
}

// TestPlanCacheEvictionMetrics drives the eviction script of
// TestPlanCacheEviction and checks the obs eviction counter and
// entries gauge.
func TestPlanCacheEvictionMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	c := NewPlanCache(2, CompileOptions{})
	c.Instrument(reg)
	for i := 0; i < 3; i++ {
		src, dst := cachePair(t, int64(8*(i+1)))
		if _, _, err := c.GetOrCompile(src, dst); err != nil {
			t.Fatal(err)
		}
	}
	if got := reg.Counter(planCachePrefix + "_evictions_total").Value(); got != 1 {
		t.Errorf("evictions = %d, want 1", got)
	}
	if got := reg.Gauge(planCachePrefix + "_entries").Value(); got != 2 {
		t.Errorf("entries gauge = %d, want 2", got)
	}
	if got := uint64(c.Stats().Evictions); got != reg.Counter(planCachePrefix+"_evictions_total").Value() {
		t.Errorf("obs evictions diverge from CacheStats (%d)", got)
	}
	c.Purge()
	if got := reg.Gauge(planCachePrefix + "_entries").Value(); got != 0 {
		t.Errorf("entries after purge = %d, want 0", got)
	}
}

// TestPairCacheMetricsMatchScriptedSequence mirrors the sweep of
// TestPairCacheMatchesDirect: every pair missed once and hit once.
func TestPairCacheMetricsMatchScriptedSequence(t *testing.T) {
	src, dst := cachePair(t, 16)
	reg := obs.NewRegistry()
	c := NewPairCache(64)
	c.Instrument(reg)
	for round := 0; round < 2; round++ {
		for e1 := 0; e1 < src.Pattern.Len(); e1++ {
			for e2 := 0; e2 < dst.Pattern.Len(); e2++ {
				if _, _, _, err := c.IntersectProject(src, e1, dst, e2); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	pairs := uint64(src.Pattern.Len() * dst.Pattern.Len())
	s := c.Stats()
	hits := reg.Counter(pairCachePrefix + "_hits_total").Value()
	misses := reg.Counter(pairCachePrefix + "_misses_total").Value()
	if hits != s.Hits || misses != s.Misses {
		t.Errorf("obs (hits=%d misses=%d) != CacheStats %+v", hits, misses, s)
	}
	if misses != pairs || hits != pairs {
		t.Errorf("hits=%d misses=%d, want %d each", hits, misses, pairs)
	}
	if got := reg.Gauge(pairCachePrefix + "_entries").Value(); got != int64(pairs) {
		t.Errorf("entries gauge = %d, want %d", got, pairs)
	}
}

// TestInstrumentBackfillsLifetimeTotals: binding a registry after
// traffic has occurred still reports lifetime totals.
func TestInstrumentBackfillsLifetimeTotals(t *testing.T) {
	src, dst := cachePair(t, 8)
	c := NewPlanCache(4, CompileOptions{})
	if _, _, err := c.GetOrCompile(src, dst); err != nil {
		t.Fatal(err)
	}
	if _, _, err := c.GetOrCompile(src, dst); err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	c.Instrument(reg)
	if got := reg.Counter(planCachePrefix + "_hits_total").Value(); got != 1 {
		t.Errorf("backfilled hits = %d, want 1", got)
	}
	if got := reg.Counter(planCachePrefix + "_misses_total").Value(); got != 1 {
		t.Errorf("backfilled misses = %d, want 1", got)
	}
	if got := reg.Gauge(planCachePrefix + "_entries").Value(); got != 1 {
		t.Errorf("backfilled entries = %d, want 1", got)
	}
}

func TestPlanStringAndGoString(t *testing.T) {
	if got := (*Plan)(nil).String(); got != "redist.Plan(nil)" {
		t.Errorf("nil String = %q", got)
	}
	if got := (*Plan)(nil).GoString(); got != "redist.Plan(nil)" {
		t.Errorf("nil GoString = %q", got)
	}
	src, dst := cachePair(t, 8)
	p, err := NewPlan(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	s := p.String()
	for _, want := range []string{
		fmt.Sprintf("%d transfers", len(p.Transfers)),
		fmt.Sprintf("%d runs/period", p.SegmentsPerPeriod()),
		fmt.Sprintf("%d B/period", p.BytesPerPeriod()),
		fmt.Sprintf("period %d", p.Period),
		fmt.Sprintf("base %d", p.Base),
		"coalesced",
	} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
	raw, err := CompilePlan(src, dst, CompileOptions{NoCoalesce: true})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(raw.String(), "uncoalesced") {
		t.Errorf("NoCoalesce plan String() = %q, want uncoalesced", raw.String())
	}
	g := p.GoString()
	if !strings.Contains(g, "src: ") || !strings.Contains(g, "coalesced: true") {
		t.Errorf("GoString() = %q", g)
	}
	// %v and %#v pick the interfaces up.
	if fmt.Sprintf("%v", p) != s {
		t.Error("the default fmt verb does not use String()")
	}
	if fmt.Sprintf("%#v", p) != g {
		t.Error("the go-syntax fmt verb does not use GoString()")
	}
}

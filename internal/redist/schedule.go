package redist

import (
	"fmt"
	"sort"
)

// schedule.go derives per-node communication schedules from a
// redistribution plan — the message lists an SPMD implementation (one
// process per source element, one per destination element) would post.
// PITFALLS were built for exactly this use in the PARADIGM compiler:
// "automatic generation of efficient array redistribution routines".

// Message is one point-to-point transfer of a schedule.
type Message struct {
	From, To int   // source element / destination element
	Bytes    int64 // bytes per execution for the planned data length
	Runs     int64 // contiguous runs gathered into the message
}

// Schedule is the communication plan for redistributing length bytes.
type Schedule struct {
	Length   int64
	Messages []Message
}

// BuildSchedule derives the schedule for redistributing the first
// length bytes of file data under the plan.
func (p *Plan) BuildSchedule(length int64) (*Schedule, error) {
	if length < 0 {
		return nil, fmt.Errorf("redist: negative length %d", length)
	}
	s := &Schedule{Length: length}
	if length == 0 {
		return s, nil
	}
	for i := range p.Transfers {
		t := &p.Transfers[i]
		var bytes, runs int64
		for k := int64(0); k*p.Period < length; k++ {
			for _, tr := range t.triples {
				n := tr.n
				if rem := length - k*p.Period - tr.fileOff; rem < n {
					n = rem
				}
				if n <= 0 {
					continue
				}
				bytes += n
				runs++
			}
		}
		if bytes == 0 {
			continue
		}
		s.Messages = append(s.Messages, Message{
			From: t.SrcElem, To: t.DstElem, Bytes: bytes, Runs: runs,
		})
	}
	sort.Slice(s.Messages, func(i, j int) bool {
		if s.Messages[i].From != s.Messages[j].From {
			return s.Messages[i].From < s.Messages[j].From
		}
		return s.Messages[i].To < s.Messages[j].To
	})
	return s, nil
}

// TotalBytes returns the bytes moved by the schedule.
func (s *Schedule) TotalBytes() int64 {
	var n int64
	for _, m := range s.Messages {
		n += m.Bytes
	}
	return n
}

// SendsOf returns the messages node (source element) `from` sends.
func (s *Schedule) SendsOf(from int) []Message {
	var out []Message
	for _, m := range s.Messages {
		if m.From == from {
			out = append(out, m)
		}
	}
	return out
}

// RecvsOf returns the messages node (destination element) `to`
// receives.
func (s *Schedule) RecvsOf(to int) []Message {
	var out []Message
	for _, m := range s.Messages {
		if m.To == to {
			out = append(out, m)
		}
	}
	return out
}

// MaxFanOut returns the largest number of distinct destinations any
// source sends to — the contention measure a schedule optimizer would
// balance.
func (s *Schedule) MaxFanOut() int {
	counts := map[int]int{}
	maxN := 0
	for _, m := range s.Messages {
		counts[m.From]++
		if counts[m.From] > maxN {
			maxN = counts[m.From]
		}
	}
	return maxN
}

package redist

import (
	"fmt"

	"parafile/internal/core"
	"parafile/internal/falls"
)

// project.go implements the intersection projection of §7: re-express
// the bytes common to two partition elements in the linear space of
// one of them, using the element's mapping function. The projection is
// what view setting stores at the compute node (PROJ_V) and ships to
// the I/O node (PROJ_S) in the Clusterfile case study.

// Projection is a periodic subset of one partition element's linear
// space. Set describes one intersection period; Period is the number
// of element bytes spanned by one intersection period; Bytes is the
// number of selected bytes per period.
type Projection struct {
	Set    falls.Set
	Period int64
	Bytes  int64
}

// Project computes PROJ_e(I): the intersection re-expressed in the
// linear space of the element served by mapper m, which must be one of
// the two elements that produced the intersection.
func Project(i *Intersection, m *core.Mapper) (*Projection, error) {
	if i == nil || m == nil {
		return nil, fmt.Errorf("redist: nil intersection or mapper")
	}
	zs := m.File().Pattern.Size()
	if i.Period%zs != 0 {
		return nil, fmt.Errorf("redist: intersection period %d not a multiple of pattern size %d",
			i.Period, zs)
	}
	period := i.Period / zs * m.ElementSize()
	proj := &Projection{Period: period, Bytes: i.Set.Size()}
	if i.Empty() {
		return proj, nil
	}
	// Contiguous runs of common bytes map to contiguous runs of the
	// element's linear space (the mapping enumerates the element's
	// bytes in file order), so mapping each leaf segment's start
	// suffices. Map yields true element offsets, which for a non-zero
	// alignment base land in [bias, bias+period) where bias counts the
	// element bytes preceding the base; segments are re-based so that
	// the one-period set can be re-phased below.
	bias, err := m.MapNext(i.Base)
	if err != nil {
		return nil, err
	}
	var segs []falls.LineSegment
	var mapErr error
	i.Set.Walk(func(seg falls.LineSegment) bool {
		v, err := m.Map(i.Base + seg.L)
		if err != nil {
			mapErr = fmt.Errorf("redist: projecting segment %v: %w", seg, err)
			return false
		}
		segs = append(segs, falls.LineSegment{L: v - bias, R: v - bias + seg.Len() - 1})
		return true
	})
	if mapErr != nil {
		return nil, mapErr
	}
	proj.Set = rotateToPhase(falls.LeavesToSet(segs), period, bias)
	if err := proj.Set.Validate(); err != nil {
		return nil, fmt.Errorf("redist: projection invalid: %w", err)
	}
	if proj.Set.Size() != proj.Bytes {
		return nil, fmt.Errorf("redist: projection size %d != intersection size %d",
			proj.Set.Size(), proj.Bytes)
	}
	return proj, nil
}

// rotateToPhase re-expresses a one-period selection counted from the
// alignment base (coordinates in [0, period), where coordinate 0 is
// the bias-th element byte) as the equivalent periodic set in the
// element's true phase: x selected iff (x - bias) mod period was.
func rotateToPhase(s falls.Set, period, bias int64) falls.Set {
	if len(s) == 0 || falls.Mod64(bias, period) == 0 {
		return s
	}
	return falls.Rotate(s, period, -bias)
}

// Empty reports whether the projection selects no bytes.
func (p *Projection) Empty() bool { return p.Bytes == 0 }

// WalkRange walks the projection's selected element bytes within the
// inclusive element-space window [lo, hi], handling the periodic
// repetition beyond the first period.
func (p *Projection) WalkRange(lo, hi int64, fn func(seg falls.LineSegment) bool) {
	if p.Empty() || hi < lo {
		return
	}
	for k := floorDiv(lo, p.Period); k*p.Period <= hi; k++ {
		if k < 0 {
			continue
		}
		base := k * p.Period
		done := true
		p.Set.Walk(func(seg falls.LineSegment) bool {
			abs := falls.LineSegment{L: seg.L + base, R: seg.R + base}
			if abs.R < lo {
				return true
			}
			if abs.L > hi {
				done = false
				return false
			}
			return fn(falls.LineSegment{L: max64(abs.L, lo), R: min64(abs.R, hi)})
		})
		if !done {
			return
		}
	}
}

// BytesIn counts the selected bytes within the element-space window
// [lo, hi].
func (p *Projection) BytesIn(lo, hi int64) int64 {
	var n int64
	p.WalkRange(lo, hi, func(seg falls.LineSegment) bool {
		n += seg.Len()
		return true
	})
	return n
}

// SegmentsIn counts the selected segments within [lo, hi] — the
// fragmentation measure that drives gather/scatter cost.
func (p *Projection) SegmentsIn(lo, hi int64) int64 {
	var n int64
	p.WalkRange(lo, hi, func(seg falls.LineSegment) bool {
		n++
		return true
	})
	return n
}

// IsContiguous reports whether the projection's bytes within [lo, hi]
// form one gap-free run covering the whole window — the §8.1 test for
// the zero-copy write path.
func (p *Projection) IsContiguous(lo, hi int64) bool {
	if hi < lo {
		return true
	}
	next := lo
	ok := true
	p.WalkRange(lo, hi, func(seg falls.LineSegment) bool {
		if seg.L != next {
			ok = false
			return false
		}
		next = seg.R + 1
		return true
	})
	return ok && next == hi+1
}

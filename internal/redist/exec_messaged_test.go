package redist

import (
	"bytes"
	"math/rand"
	"testing"

	"parafile/internal/part"
)

// TestMessagedMatchesDirect: the gather/send/scatter executor produces
// exactly what the fused executor produces, for the matrix layouts and
// partial lengths.
func TestMessagedMatchesDirect(t *testing.T) {
	rows, _ := part.RowBlocks(16, 16, 4)
	cols, _ := part.ColBlocks(16, 16, 4)
	sq, _ := part.SquareBlocks(16, 16, 2, 2)
	layouts := []*part.Pattern{rows, cols, sq}
	img := image(256, 99)
	for _, a := range layouts {
		for _, b := range layouts {
			src := part.MustFile(0, a)
			dst := part.MustFile(0, b)
			plan, err := NewPlan(src, dst)
			if err != nil {
				t.Fatal(err)
			}
			for _, length := range []int64{256, 129, 64, 17} {
				srcBufs := SplitFile(src, img[:length])
				want := SplitFile(dst, img[:length])
				got := make([][]byte, len(want))
				for e := range want {
					got[e] = make([]byte, len(want[e]))
				}
				if err := plan.ExecuteMessaged(srcBufs, got, length, nil); err != nil {
					t.Fatal(err)
				}
				for e := range want {
					if !bytes.Equal(got[e], want[e]) {
						t.Fatalf("messaged execution differs on element %d (length %d)", e, length)
					}
				}
			}
		}
	}
}

// TestMessagedObserverSeesSchedule: the message handler observes the
// same byte counts the schedule predicts.
func TestMessagedObserverSeesSchedule(t *testing.T) {
	rows, _ := part.RowBlocks(8, 8, 4)
	cols, _ := part.ColBlocks(8, 8, 4)
	src := part.MustFile(0, rows)
	dst := part.MustFile(0, cols)
	plan, err := NewPlan(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	const length = 64
	sched, err := plan.BuildSchedule(length)
	if err != nil {
		t.Fatal(err)
	}
	want := map[[2]int]int64{}
	for _, m := range sched.Messages {
		want[[2]int{m.From, m.To}] = m.Bytes
	}
	img := image(length, 5)
	srcBufs := SplitFile(src, img)
	dstBufs := SplitFile(dst, img)
	seen := map[[2]int]int64{}
	err = plan.ExecuteMessaged(srcBufs, dstBufs, length, func(m Message, buf []byte) {
		seen[[2]int{m.From, m.To}] += int64(len(buf))
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(seen) != len(want) {
		t.Fatalf("observed %d message pairs, schedule has %d", len(seen), len(want))
	}
	for k, v := range want {
		if seen[k] != v {
			t.Errorf("pair %v: observed %d bytes, schedule says %d", k, seen[k], v)
		}
	}
}

// TestPropertyMessagedRandom: random partition pairs, random lengths.
func TestPropertyMessagedRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(180))
	for iter := 0; iter < 50; iter++ {
		z1 := int64(8 * (1 + rng.Intn(5)))
		z2 := int64(8 * (1 + rng.Intn(5)))
		src := fileAround(t, randSetIn(rng, z1), z1, 0)
		dst := fileAround(t, randSetIn(rng, z2), z2, 0)
		plan, err := NewPlan(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		length := 1 + rng.Int63n(3*falls64Lcm(z1, z2))
		img := image(length, int64(iter))
		srcBufs := SplitFile(src, img)
		want := SplitFile(dst, img)
		got := make([][]byte, len(want))
		for e := range want {
			got[e] = make([]byte, len(want[e]))
		}
		if err := plan.ExecuteMessaged(srcBufs, got, length, nil); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		for e := range want {
			if !bytes.Equal(got[e], want[e]) {
				t.Fatalf("iter %d: messaged execution differs on element %d (len %d, src %v, dst %v)",
					iter, e, length, src.Pattern, dst.Pattern)
			}
		}
	}
}

func TestMessagedValidation(t *testing.T) {
	rows, _ := part.RowBlocks(8, 8, 4)
	plan, _ := NewPlan(part.MustFile(0, rows), part.MustFile(0, rows))
	bufs := make([][]byte, 4)
	for i := range bufs {
		bufs[i] = make([]byte, 16)
	}
	if err := plan.ExecuteMessaged(bufs[:1], bufs, 64, nil); err == nil {
		t.Error("wrong source count accepted")
	}
	if err := plan.ExecuteMessaged(bufs, bufs[:1], 64, nil); err == nil {
		t.Error("wrong destination count accepted")
	}
	if err := plan.ExecuteMessaged(bufs, bufs, -1, nil); err == nil {
		t.Error("negative length accepted")
	}
	short := [][]byte{{}, {}, {}, {}}
	if err := plan.ExecuteMessaged(short, bufs, 64, nil); err == nil {
		t.Error("short source accepted")
	}
}

package redist

import (
	"math/rand"
	"testing"

	"parafile/internal/falls"
	"parafile/internal/part"
)

// fileAround builds a file whose element 0 is the given set, with a
// complement element filling the rest of the pattern.
func fileAround(t *testing.T, set falls.Set, size, displacement int64) *part.File {
	t.Helper()
	elems := []part.Element{{Name: "elem", Set: set}}
	if rest := falls.Complement(set, size); len(rest) > 0 {
		elems = append(elems, part.Element{Name: "rest", Set: rest})
	}
	pat, err := part.NewPattern(elems...)
	if err != nil {
		t.Fatalf("fileAround: %v", err)
	}
	return part.MustFile(displacement, pat)
}

// fig4V and fig4S are the view and subfile of the paper's Figure 4:
// V = {(0,7,16,2,{(0,1,4,2)})}, S = {(0,3,8,4,{(0,0,2,2)})}, both in
// partitioning patterns of size 32.
func fig4V() falls.Set {
	return falls.Set{falls.MustNested(falls.MustNew(0, 7, 16, 2), falls.Set{falls.MustLeaf(0, 1, 4, 2)})}
}

func fig4S() falls.Set {
	return falls.Set{falls.MustNested(falls.MustNew(0, 3, 8, 4), falls.Set{falls.MustLeaf(0, 0, 2, 2)})}
}

// TestFigure4Intersection reproduces §7's worked example: the
// intersection of V and S is {(0,3,16,2,{(0,0,4,1)})} — the byte set
// {0, 16} per 32-byte pattern.
func TestFigure4Intersection(t *testing.T) {
	fv := fileAround(t, fig4V(), 32, 0)
	fs := fileAround(t, fig4S(), 32, 0)
	inter, err := IntersectElements(fv, 0, fs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if inter.Period != 32 || inter.Base != 0 {
		t.Errorf("period=%d base=%d, want 32, 0", inter.Period, inter.Base)
	}
	wantOffsets := []int64{0, 16}
	got := inter.Set.Offsets()
	if len(got) != len(wantOffsets) {
		t.Fatalf("intersection offsets = %v, want %v", got, wantOffsets)
	}
	for i := range wantOffsets {
		if got[i] != wantOffsets[i] {
			t.Fatalf("intersection offsets = %v, want %v", got, wantOffsets)
		}
	}
	if inter.BytesPerPeriod() != 2 {
		t.Errorf("BytesPerPeriod = %d, want 2", inter.BytesPerPeriod())
	}
	// The representation must stay compact: the paper's result is a
	// single nested FALLS.
	if len(inter.Set) != 1 {
		t.Errorf("intersection has %d members %v, want 1 compact member", len(inter.Set), inter.Set)
	}
	if err := inter.Set.Validate(); err != nil {
		t.Errorf("intersection set invalid: %v", err)
	}
}

// TestIntersectionIdenticalPartitions: intersecting an element with
// itself (same parameters for physical and logical partition) yields
// the element's own byte set — the optimal-match case of §6.2.
func TestIntersectionIdenticalPartitions(t *testing.T) {
	rows, err := part.RowBlocks(8, 8, 4)
	if err != nil {
		t.Fatal(err)
	}
	f1 := part.MustFile(0, rows)
	f2 := part.MustFile(0, rows)
	for e := 0; e < 4; e++ {
		inter, err := IntersectElements(f1, e, f2, e)
		if err != nil {
			t.Fatal(err)
		}
		if !falls.OffsetsEqual(inter.Set, rows.Element(e).Set) {
			t.Errorf("element %d: self-intersection %v != element set %v",
				e, inter.Set, rows.Element(e).Set)
		}
	}
	// Distinct elements of the same partition share nothing.
	inter, err := IntersectElements(f1, 0, f2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !inter.Empty() {
		t.Errorf("disjoint elements intersect: %v", inter.Set)
	}
}

// intersectionOracle checks an Intersection against brute-force
// membership over one period.
func intersectionOracle(t *testing.T, f1 *part.File, e1 int, f2 *part.File, e2 int, inter *Intersection) {
	t.Helper()
	set1 := f1.Pattern.Element(e1).Set
	set2 := f2.Pattern.Element(e2).Set
	z1, z2 := f1.Pattern.Size(), f2.Pattern.Size()
	if err := inter.Set.Validate(); err != nil {
		t.Fatalf("intersection set invalid: %v", err)
	}
	var count int64
	for o := int64(0); o < inter.Period; o++ {
		x := inter.Base + o
		in1 := set1.Contains(falls.Mod64(x-f1.Displacement, z1))
		in2 := set2.Contains(falls.Mod64(x-f2.Displacement, z2))
		want := in1 && in2
		if got := inter.Set.Contains(o); got != want {
			t.Fatalf("offset %d (file %d): intersection=%v, oracle=%v\nset1=%v d1=%d\nset2=%v d2=%d\nresult=%v",
				o, x, got, want, set1, f1.Displacement, set2, f2.Displacement, inter.Set)
		}
		if want {
			count++
		}
	}
	if count != inter.BytesPerPeriod() {
		t.Fatalf("BytesPerPeriod=%d, oracle count=%d", inter.BytesPerPeriod(), count)
	}
}

// randSetIn produces a random valid set within [0, span) for property
// tests (mirrors the falls package generator).
func randSetIn(rng *rand.Rand, span int64) falls.Set {
	var out falls.Set
	cursor := int64(0)
	for m := 0; m < 3 && span-cursor >= 2; m++ {
		sub := span - cursor
		f := randFALLSIn(rng, sub)
		n := falls.Leaf(falls.FALLS{L: f.L + cursor, R: f.R + cursor, S: f.S, N: f.N})
		if rng.Intn(2) == 0 && n.BlockLen() >= 4 {
			n.Inner = randSetIn(rng, n.BlockLen())
			if len(n.Inner) == 0 {
				n.Inner = nil
			}
		}
		out = append(out, n)
		cursor = n.Extent() + 1 + rng.Int63n(3)
	}
	if len(out) == 0 {
		out = falls.Set{falls.Leaf(falls.FALLS{L: 0, R: span - 1, S: span, N: 1})}
	}
	if err := out.Validate(); err != nil {
		panic(err)
	}
	return out
}

func randFALLSIn(rng *rand.Rand, span int64) falls.FALLS {
	if span < 2 {
		return falls.FALLS{L: 0, R: span - 1, S: span, N: 1}
	}
	for {
		l := rng.Int63n(span / 2)
		blockLen := 1 + rng.Int63n(max64(1, span/8)+1)
		r := l + blockLen - 1
		if r >= span {
			continue
		}
		s := blockLen + rng.Int63n(blockLen*3+1)
		maxN := (span - 1 - r) / s
		n := int64(1)
		if maxN > 0 {
			n = 1 + rng.Int63n(min64(maxN, 8)+1)
		}
		f := falls.FALLS{L: l, R: r, S: s, N: n}
		if f.Validate() == nil && f.Extent() < span {
			return f
		}
	}
}

// TestPropertyIntersectionOracle: random element pairs with random
// pattern sizes and displacements agree with brute-force membership.
func TestPropertyIntersectionOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	for iter := 0; iter < 150; iter++ {
		z1 := int64(8 * (1 + rng.Intn(8)))
		z2 := int64(8 * (1 + rng.Intn(8)))
		d1 := rng.Int63n(6)
		d2 := rng.Int63n(6)
		f1 := fileAround(t, randSetIn(rng, z1), z1, d1)
		f2 := fileAround(t, randSetIn(rng, z2), z2, d2)
		inter, err := IntersectElements(f1, 0, f2, 0)
		if err != nil {
			t.Fatal(err)
		}
		intersectionOracle(t, f1, 0, f2, 0, inter)
	}
}

// TestPropertyIntersectionCoversAllPairs: over all element pairs of
// two partitions, the per-pair intersections tile each element — every
// byte of the common region belongs to exactly one pair.
func TestPropertyIntersectionCoversAllPairs(t *testing.T) {
	rows, _ := part.RowBlocks(8, 8, 4)
	cols, _ := part.ColBlocks(8, 8, 4)
	sq, _ := part.SquareBlocks(8, 8, 2, 2)
	pats := []*part.Pattern{rows, cols, sq}
	for a, pa := range pats {
		for b, pb := range pats {
			f1 := part.MustFile(0, pa)
			f2 := part.MustFile(0, pb)
			covered := make([]int, 64)
			for e1 := 0; e1 < pa.Len(); e1++ {
				for e2 := 0; e2 < pb.Len(); e2++ {
					inter, err := IntersectElements(f1, e1, f2, e2)
					if err != nil {
						t.Fatal(err)
					}
					for _, o := range inter.Set.Offsets() {
						covered[o]++
					}
				}
			}
			for o, c := range covered {
				if c != 1 {
					t.Fatalf("patterns %d×%d: byte %d covered %d times", a, b, o, c)
				}
			}
		}
	}
}

// TestIntersectionDisplacementAlignment: §7 PREPROCESS — patterns with
// different displacements are aligned at the larger one.
func TestIntersectionDisplacementAlignment(t *testing.T) {
	// Two stripe patterns of the same geometry but shifted phases.
	s1, _ := part.Stripe(4, 2)
	s2, _ := part.Stripe(4, 2)
	f1 := part.MustFile(0, s1)
	f2 := part.MustFile(4, s2) // shifted by one stripe unit
	inter, err := IntersectElements(f1, 0, f2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if inter.Base != 4 {
		t.Errorf("base = %d, want 4", inter.Base)
	}
	intersectionOracle(t, f1, 0, f2, 0, inter)
	// With a phase shift of one stripe unit, element 0 of f1 overlaps
	// element 1 of f2, not element 0.
	if !inter.Empty() {
		t.Errorf("phase-shifted stripes should not overlap on element 0/0, got %v", inter.Set)
	}
	cross, err := IntersectElements(f1, 0, f2, 1)
	if err != nil {
		t.Fatal(err)
	}
	if cross.BytesPerPeriod() != 4 {
		t.Errorf("cross pair shares %d bytes per period, want 4", cross.BytesPerPeriod())
	}
	intersectionOracle(t, f1, 0, f2, 1, cross)
}

// TestPropertyLcmPeriods: pattern sizes with non-trivial lcm.
func TestPropertyLcmPeriods(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for iter := 0; iter < 100; iter++ {
		z1 := int64(6 * (1 + rng.Intn(5)))
		z2 := int64(10 * (1 + rng.Intn(4)))
		f1 := fileAround(t, randSetIn(rng, z1), z1, 0)
		f2 := fileAround(t, randSetIn(rng, z2), z2, 0)
		inter, err := IntersectElements(f1, 0, f2, 0)
		if err != nil {
			t.Fatal(err)
		}
		if want := falls.Lcm64(z1, z2); inter.Period != want {
			t.Fatalf("period = %d, want lcm(%d,%d)=%d", inter.Period, z1, z2, want)
		}
		intersectionOracle(t, f1, 0, f2, 0, inter)
	}
}

func TestIntersectElementsValidation(t *testing.T) {
	f := fileAround(t, fig4V(), 32, 0)
	if _, err := IntersectElements(nil, 0, f, 0); err == nil {
		t.Error("nil file accepted")
	}
	if _, err := IntersectElements(f, 5, f, 0); err == nil {
		t.Error("out-of-range element accepted")
	}
}

package redist

import (
	"container/list"
	"fmt"
	"sync"

	"parafile/internal/codec"
	"parafile/internal/obs"
	"parafile/internal/part"
)

// cache.go implements fingerprint-keyed LRU caches for the two
// view-set products the paper says should be "paid only at view
// setting and amortized over several accesses" (§8.2): whole
// redistribution plans (PlanCache) and per-element-pair
// intersection/projection triples (PairCache, what Clusterfile's
// SetView computes). Keys are canonical codec encodings of
// (pattern, displacement), so two files with equal geometry hit the
// same entry no matter how they were constructed. Cached values are
// immutable after compilation and may be shared by any number of
// goroutines.

// Fingerprint returns the canonical cache key of a partition-pair
// geometry: the codec encodings of (src.Pattern, src.Displacement)
// and (dst.Pattern, dst.Displacement), concatenated. The encoding is
// self-delimiting, so the concatenation is unambiguous.
func Fingerprint(src, dst *part.File) string {
	return string(codec.EncodeFile(src)) + string(codec.EncodeFile(dst))
}

// CacheStats counts cache traffic.
type CacheStats struct {
	Hits, Misses, Evictions uint64
}

// lru is a mutex-guarded LRU map shared by the typed caches. The obs
// metrics mirror the CacheStats counters; unbound (nil) metrics are
// free no-ops, so uninstrumented caches pay nothing.
type lru struct {
	mu    sync.Mutex
	cap   int
	ll    *list.List // front = most recently used
	items map[string]*list.Element
	stats CacheStats

	hits, misses, evictions *obs.Counter
	entries                 *obs.Gauge
}

// instrument binds the lru's traffic to <prefix>_hits_total,
// <prefix>_misses_total, <prefix>_evictions_total and the
// <prefix>_entries gauge of the registry. Counters pick up from the
// current CacheStats so a late bind still reports lifetime totals.
func (c *lru) instrument(reg *obs.Registry, prefix string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.hits = reg.Counter(prefix + "_hits_total")
	c.misses = reg.Counter(prefix + "_misses_total")
	c.evictions = reg.Counter(prefix + "_evictions_total")
	c.entries = reg.Gauge(prefix + "_entries")
	c.hits.Add(int64(c.stats.Hits))
	c.misses.Add(int64(c.stats.Misses))
	c.evictions.Add(int64(c.stats.Evictions))
	c.entries.Set(int64(c.ll.Len()))
}

type lruEntry struct {
	key string
	val interface{}
}

func newLRU(capacity, defaultCap int) *lru {
	if capacity <= 0 {
		capacity = defaultCap
	}
	return &lru{cap: capacity, ll: list.New(), items: make(map[string]*list.Element)}
}

func (c *lru) get(key string) (interface{}, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		c.stats.Hits++
		c.hits.Inc()
		return el.Value.(*lruEntry).val, true
	}
	c.stats.Misses++
	c.misses.Inc()
	return nil, false
}

func (c *lru) add(key string, val interface{}) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*lruEntry).val = val
		return
	}
	c.items[key] = c.ll.PushFront(&lruEntry{key: key, val: val})
	for c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*lruEntry).key)
		c.stats.Evictions++
		c.evictions.Inc()
	}
	c.entries.Set(int64(c.ll.Len()))
}

func (c *lru) remove(key string) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		return false
	}
	c.ll.Remove(el)
	delete(c.items, key)
	c.entries.Set(int64(c.ll.Len()))
	return true
}

func (c *lru) purge() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.ll.Init()
	c.items = make(map[string]*list.Element)
	c.entries.Set(0)
}

func (c *lru) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

func (c *lru) statsSnapshot() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats
}

// DefaultCacheCapacity is the entry count used when a cache is built
// with a non-positive capacity.
const DefaultCacheCapacity = 64

// PlanCache is an LRU cache of compiled redistribution plans keyed by
// partition-pair fingerprint. It is safe for concurrent use; cached
// plans are shared, which is safe because plans are immutable after
// compilation (Execute and friends only read them).
type PlanCache struct {
	lru  *lru
	opts CompileOptions
}

// NewPlanCache builds a plan cache holding up to capacity plans
// (DefaultCacheCapacity when capacity <= 0). opts applies to every
// compile the cache performs on a miss.
func NewPlanCache(capacity int, opts CompileOptions) *PlanCache {
	return &PlanCache{lru: newLRU(capacity, DefaultCacheCapacity), opts: opts}
}

// Instrument binds the cache's traffic to the registry's
// parafile_redist_plan_cache_* series and routes the compile metrics
// of cache misses there too. A nil registry reverts to uninstrumented.
func (c *PlanCache) Instrument(reg *obs.Registry) {
	c.lru.instrument(reg, planCachePrefix)
	c.opts.Metrics = reg
}

// Get returns the cached plan for the pair, if present.
func (c *PlanCache) Get(src, dst *part.File) (*Plan, bool) {
	v, ok := c.lru.get(Fingerprint(src, dst))
	if !ok {
		return nil, false
	}
	return v.(*Plan), true
}

// Put inserts (or refreshes) a plan.
func (c *PlanCache) Put(src, dst *part.File, p *Plan) {
	c.lru.add(Fingerprint(src, dst), p)
}

// GetOrCompile returns the cached plan for the pair, compiling and
// caching it on a miss. hit reports whether the plan came from the
// cache. Compilation runs outside the cache lock, so two goroutines
// missing on the same key may both compile; the plans are identical
// and the last Put wins.
func (c *PlanCache) GetOrCompile(src, dst *part.File) (p *Plan, hit bool, err error) {
	key := Fingerprint(src, dst)
	if v, ok := c.lru.get(key); ok {
		return v.(*Plan), true, nil
	}
	p, err = CompilePlan(src, dst, c.opts)
	if err != nil {
		return nil, false, err
	}
	c.lru.add(key, p)
	return p, false, nil
}

// Invalidate drops the pair's entry, reporting whether one existed.
func (c *PlanCache) Invalidate(src, dst *part.File) bool {
	return c.lru.remove(Fingerprint(src, dst))
}

// Purge empties the cache.
func (c *PlanCache) Purge() { c.lru.purge() }

// Len returns the number of cached plans.
func (c *PlanCache) Len() int { return c.lru.len() }

// Stats returns a snapshot of the cache counters.
func (c *PlanCache) Stats() CacheStats { return c.lru.statsSnapshot() }

// pairValue is one cached IntersectProjectElements result.
type pairValue struct {
	inter  *Intersection
	p1, p2 *Projection
}

// PairCache is an LRU cache of per-element-pair intersection and
// projection results — what Clusterfile's SetView computes for every
// (view element, subfile) pair. Safe for concurrent use; the cached
// intersection and projections are immutable and shared.
type PairCache struct {
	lru *lru
}

// NewPairCache builds a pair cache holding up to capacity entries
// (DefaultCacheCapacity when capacity <= 0).
func NewPairCache(capacity int) *PairCache {
	return &PairCache{lru: newLRU(capacity, DefaultCacheCapacity)}
}

// Instrument binds the cache's traffic to the registry's
// parafile_redist_pair_cache_* series. A nil registry reverts to
// uninstrumented.
func (c *PairCache) Instrument(reg *obs.Registry) {
	c.lru.instrument(reg, pairCachePrefix)
}

func pairKey(f1 *part.File, e1 int, f2 *part.File, e2 int) string {
	buf := codec.AppendUvarint(nil, uint64(e1))
	buf = codec.AppendUvarint(buf, uint64(e2))
	return string(buf) + Fingerprint(f1, f2)
}

// IntersectProject is IntersectProjectElements through the cache:
// the intersection of element e1 of f1 with element e2 of f2 plus its
// projections onto both elements' linear spaces.
func (c *PairCache) IntersectProject(f1 *part.File, e1 int, f2 *part.File, e2 int) (*Intersection, *Projection, *Projection, error) {
	if f1 == nil || f2 == nil {
		return nil, nil, nil, fmt.Errorf("redist: nil file")
	}
	key := pairKey(f1, e1, f2, e2)
	if v, ok := c.lru.get(key); ok {
		pv := v.(*pairValue)
		return pv.inter, pv.p1, pv.p2, nil
	}
	inter, p1, p2, err := IntersectProjectElements(f1, e1, f2, e2)
	if err != nil {
		return nil, nil, nil, err
	}
	c.lru.add(key, &pairValue{inter: inter, p1: p1, p2: p2})
	return inter, p1, p2, nil
}

// Purge empties the cache.
func (c *PairCache) Purge() { c.lru.purge() }

// Len returns the number of cached pairs.
func (c *PairCache) Len() int { return c.lru.len() }

// Stats returns a snapshot of the cache counters.
func (c *PairCache) Stats() CacheStats { return c.lru.statsSnapshot() }

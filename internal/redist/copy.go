package redist

import (
	"fmt"

	"parafile/internal/falls"
)

// copy.go implements the GATHER and SCATTER procedures of §8: copying
// between the non-contiguous element-space regions selected by a
// projection (or a plain nested FALLS set) and a contiguous buffer.
// The Clusterfile write path gathers view data into a message buffer
// at the compute node and scatters the received buffer into the
// subfile at the I/O node; the same procedures implement MPI-style
// pack/unpack.

// Gather packs the bytes of src selected by proj within the inclusive
// element-space window [lo, hi] into dst, in order. It returns the
// number of bytes packed. src is indexed by element offsets; dst must
// have room for proj.BytesIn(lo, hi) bytes.
func Gather(dst, src []byte, proj *Projection, lo, hi int64) (int64, error) {
	var pos int64
	var err error
	proj.WalkRange(lo, hi, func(seg falls.LineSegment) bool {
		if seg.R >= int64(len(src)) {
			err = fmt.Errorf("redist: gather source too small: need offset %d, have %d bytes",
				seg.R, len(src))
			return false
		}
		if pos+seg.Len() > int64(len(dst)) {
			err = fmt.Errorf("redist: gather destination too small: need %d bytes, have %d",
				pos+seg.Len(), len(dst))
			return false
		}
		copy(dst[pos:pos+seg.Len()], src[seg.L:seg.R+1])
		pos += seg.Len()
		return true
	})
	if err != nil {
		return pos, err
	}
	return pos, nil
}

// Scatter unpacks the contiguous bytes of src into the regions of dst
// selected by proj within [lo, hi], in order — the reverse of Gather.
// It returns the number of bytes unpacked.
func Scatter(dst, src []byte, proj *Projection, lo, hi int64) (int64, error) {
	var pos int64
	var err error
	proj.WalkRange(lo, hi, func(seg falls.LineSegment) bool {
		if pos+seg.Len() > int64(len(src)) {
			err = fmt.Errorf("redist: scatter source too small: need %d bytes, have %d",
				pos+seg.Len(), len(src))
			return false
		}
		if seg.R >= int64(len(dst)) {
			err = fmt.Errorf("redist: scatter destination too small: need offset %d, have %d bytes",
				seg.R, len(dst))
			return false
		}
		copy(dst[seg.L:seg.R+1], src[pos:pos+seg.Len()])
		pos += seg.Len()
		return true
	})
	if err != nil {
		return pos, err
	}
	return pos, nil
}

// GatherSet packs the bytes of src selected by a plain (non-periodic)
// set within [lo, hi] into dst. It is the §8 GATHER(dst, src, lo, hi,
// S) signature and the basis of MPI-style Pack.
func GatherSet(dst, src []byte, s falls.Set, lo, hi int64) (int64, error) {
	var pos int64
	var err error
	s.WalkRange(lo, hi, func(seg falls.LineSegment) bool {
		if seg.R >= int64(len(src)) {
			err = fmt.Errorf("redist: gather source too small: need offset %d, have %d bytes",
				seg.R, len(src))
			return false
		}
		if pos+seg.Len() > int64(len(dst)) {
			err = fmt.Errorf("redist: gather destination too small: need %d bytes, have %d",
				pos+seg.Len(), len(dst))
			return false
		}
		copy(dst[pos:pos+seg.Len()], src[seg.L:seg.R+1])
		pos += seg.Len()
		return true
	})
	return pos, err
}

// ScatterSet unpacks contiguous src bytes into the regions of dst
// selected by a plain set within [lo, hi] — the basis of MPI-style
// Unpack.
func ScatterSet(dst, src []byte, s falls.Set, lo, hi int64) (int64, error) {
	var pos int64
	var err error
	s.WalkRange(lo, hi, func(seg falls.LineSegment) bool {
		if pos+seg.Len() > int64(len(src)) {
			err = fmt.Errorf("redist: scatter source too small: need %d bytes, have %d",
				pos+seg.Len(), len(src))
			return false
		}
		if seg.R >= int64(len(dst)) {
			err = fmt.Errorf("redist: scatter destination too small: need offset %d, have %d bytes",
				seg.R, len(dst))
			return false
		}
		copy(dst[seg.L:seg.R+1], src[pos:pos+seg.Len()])
		pos += seg.Len()
		return true
	})
	return pos, err
}

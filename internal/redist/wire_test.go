package redist

import (
	"testing"

	"parafile/internal/core"
	"parafile/internal/falls"
	"parafile/internal/part"
)

func TestProjectionRoundTrip(t *testing.T) {
	rows, _ := part.RowBlocks(16, 16, 4)
	cols, _ := part.ColBlocks(16, 16, 4)
	fr := part.MustFile(0, rows)
	fc := part.MustFile(0, cols)
	inter, err := IntersectElements(fr, 0, fc, 0)
	if err != nil {
		t.Fatal(err)
	}
	proj, err := Project(inter, core.MustMapper(fc, 0))
	if err != nil {
		t.Fatal(err)
	}
	buf := EncodeProjection(proj)
	got, err := DecodeProjection(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Period != proj.Period || got.Bytes != proj.Bytes || !got.Set.Equal(proj.Set) {
		t.Fatalf("projection round trip changed: %+v vs %+v", got, proj)
	}
}

func TestProjectionCorruption(t *testing.T) {
	p := &Projection{
		Set:    falls.Set{falls.MustLeaf(0, 3, 8, 2)},
		Period: 16,
		Bytes:  8,
	}
	buf := EncodeProjection(p)
	for cut := 0; cut < len(buf); cut++ {
		if _, err := DecodeProjection(buf[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Size mismatch detected.
	bad := &Projection{Set: p.Set, Period: 16, Bytes: 5}
	if _, err := DecodeProjection(EncodeProjection(bad)); err == nil {
		t.Error("size mismatch accepted")
	}
}

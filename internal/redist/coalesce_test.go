package redist

import (
	"bytes"
	"math/rand"
	"testing"

	"parafile/internal/falls"
	"parafile/internal/part"
)

// executeBoth compiles the pair with and without coalescing and checks
// that both plans produce byte-identical output and that coalescing
// never increases the run count.
func executeBoth(t *testing.T, src, dst *part.File, length int64, seed int64) {
	t.Helper()
	coalesced, err := CompilePlan(src, dst, CompileOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := CompilePlan(src, dst, CompileOptions{Workers: 1, NoCoalesce: true})
	if err != nil {
		t.Fatal(err)
	}
	if c, r := coalesced.SegmentsPerPeriod(), raw.SegmentsPerPeriod(); c > r {
		t.Fatalf("coalescing increased segments: %d > %d", c, r)
	}
	if coalesced.BytesPerPeriod() != raw.BytesPerPeriod() {
		t.Fatalf("coalescing changed bytes per period: %d vs %d",
			coalesced.BytesPerPeriod(), raw.BytesPerPeriod())
	}

	img := image(length, seed)
	srcBufs := SplitFile(src, img)
	want := SplitFile(dst, img)
	run := func(p *Plan, exec func(*Plan, [][]byte) error) [][]byte {
		got := make([][]byte, len(want))
		for i := range want {
			got[i] = make([]byte, len(want[i]))
		}
		if err := exec(p, got); err != nil {
			t.Fatal(err)
		}
		return got
	}
	full := func(p *Plan, got [][]byte) error { return p.Execute(srcBufs, got, length) }
	// An unaligned sub-range stresses the fileOff arithmetic of merged
	// runs across period boundaries.
	from := length / 3
	partial := func(p *Plan, got [][]byte) error {
		return p.ExecuteRange(srcBufs, got, from, length-from)
	}

	for name, exec := range map[string]func(*Plan, [][]byte) error{"full": full, "range": partial} {
		gotC := run(coalesced, exec)
		gotR := run(raw, exec)
		for e := range gotC {
			if !bytes.Equal(gotC[e], gotR[e]) {
				t.Fatalf("%s: element %d differs between coalesced and raw plans", name, e)
			}
		}
		if name == "full" {
			for e := range gotC {
				if !bytes.Equal(gotC[e], want[e]) {
					t.Fatalf("element %d differs from reference split", e)
				}
			}
		}
	}
}

// TestCoalesceStrictReduction pins a case where coalescing must merge:
// a source element of two touching leaves ([0,3] and [4,7]) against a
// dense destination — adjacent triples are contiguous in all three
// coordinates.
func TestCoalesceStrictReduction(t *testing.T) {
	src := fileAround(t, falls.Set{
		falls.MustLeaf(0, 3, 16, 1),
		falls.MustLeaf(4, 7, 16, 1),
	}, 16, 0)
	dense, err := part.NewPattern(part.Element{Name: "all", Set: falls.Set{falls.MustLeaf(0, 15, 16, 1)}})
	if err != nil {
		t.Fatal(err)
	}
	dst := part.MustFile(0, dense)

	coalesced, err := CompilePlan(src, dst, CompileOptions{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := CompilePlan(src, dst, CompileOptions{Workers: 1, NoCoalesce: true})
	if err != nil {
		t.Fatal(err)
	}
	if coalesced.SegmentsPerPeriod() >= raw.SegmentsPerPeriod() {
		t.Fatalf("expected strict reduction, got %d vs %d",
			coalesced.SegmentsPerPeriod(), raw.SegmentsPerPeriod())
	}
	executeBoth(t, src, dst, 64, 7)
}

// TestCoalescePropertyRandomPairs: on randomized partition pairs the
// coalesced plan is byte-identical to the uncoalesced one under both
// Execute and ExecuteRange.
func TestCoalescePropertyRandomPairs(t *testing.T) {
	rng := rand.New(rand.NewSource(412))
	const span = 48
	for iter := 0; iter < 120; iter++ {
		s1 := randSetIn(rng, span)
		s2 := randSetIn(rng, span)
		if len(s1) == 0 || len(s2) == 0 {
			continue
		}
		if s1.Validate() != nil || s2.Validate() != nil {
			continue
		}
		src := fileAround(t, s1, span, 0)
		dst := fileAround(t, s2, span, 0)
		executeBoth(t, src, dst, 3*span+5, int64(iter))
	}
}

// TestCoalescePaperLayouts runs the equivalence check on the §8.2
// layout pairs, where row/column geometry produces long triple chains.
func TestCoalescePaperLayouts(t *testing.T) {
	rows, _ := part.RowBlocks(16, 16, 4)
	cols, _ := part.ColBlocks(16, 16, 4)
	sq, _ := part.SquareBlocks(16, 16, 2, 2)
	pats := map[string]*part.Pattern{"rows": rows, "cols": cols, "square": sq}
	for an, a := range pats {
		for bn, b := range pats {
			t.Run(an+"->"+bn, func(t *testing.T) {
				executeBoth(t, part.MustFile(0, a), part.MustFile(0, b), 256, 99)
			})
		}
	}
}

// TestPlanGeometryAnalytic: Period and Base follow the analytic §7
// formulas (lcm of pattern sizes, larger displacement) even for plans
// compiled in parallel, and empty plans now carry them too.
func TestPlanGeometryAnalytic(t *testing.T) {
	s1 := falls.Set{falls.MustLeaf(0, 1, 6, 1)}
	s2 := falls.Set{falls.MustLeaf(0, 3, 8, 1)}
	src := fileAround(t, s1, 6, 2)
	dst := fileAround(t, s2, 8, 5)
	for _, workers := range []int{1, 4} {
		p, err := CompilePlan(src, dst, CompileOptions{Workers: workers})
		if err != nil {
			t.Fatal(err)
		}
		if p.Period != falls.Lcm64(6, 8) {
			t.Errorf("workers=%d: period = %d, want %d", workers, p.Period, falls.Lcm64(6, 8))
		}
		if p.Base != 5 {
			t.Errorf("workers=%d: base = %d, want 5", workers, p.Base)
		}
	}
}

// TestParallelPlanMatchesSequential: the worker count must not change
// the compiled plan.
func TestParallelPlanMatchesSequential(t *testing.T) {
	rows, _ := part.RowBlocks(16, 16, 4)
	cols, _ := part.ColBlocks(16, 16, 4)
	src, dst := part.MustFile(0, rows), part.MustFile(0, cols)
	seq, err := NewPlanParallel(src, dst, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{2, 3, 8, 64} {
		par, err := NewPlanParallel(src, dst, workers)
		if err != nil {
			t.Fatal(err)
		}
		if len(par.Transfers) != len(seq.Transfers) {
			t.Fatalf("workers=%d: %d transfers, want %d", workers, len(par.Transfers), len(seq.Transfers))
		}
		for i := range seq.Transfers {
			a, b := &seq.Transfers[i], &par.Transfers[i]
			if a.SrcElem != b.SrcElem || a.DstElem != b.DstElem {
				t.Fatalf("workers=%d: transfer %d pairs (%d,%d) vs (%d,%d)",
					workers, i, a.SrcElem, a.DstElem, b.SrcElem, b.DstElem)
			}
			if len(a.triples) != len(b.triples) {
				t.Fatalf("workers=%d: transfer %d has %d triples, want %d",
					workers, i, len(b.triples), len(a.triples))
			}
			for j := range a.triples {
				if a.triples[j] != b.triples[j] {
					t.Fatalf("workers=%d: transfer %d triple %d = %+v, want %+v",
						workers, i, j, b.triples[j], a.triples[j])
				}
			}
		}
	}
}

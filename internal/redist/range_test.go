package redist

import (
	"bytes"
	"math/rand"
	"testing"

	"parafile/internal/part"
)

// TestExecuteRangeMatchesFull: updating the whole range equals a full
// execution.
func TestExecuteRangeMatchesFull(t *testing.T) {
	rows, _ := part.RowBlocks(8, 8, 4)
	cols, _ := part.ColBlocks(8, 8, 4)
	src := part.MustFile(0, rows)
	dst := part.MustFile(0, cols)
	plan, err := NewPlan(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	img := image(64, 1)
	srcBufs := SplitFile(src, img)
	want := SplitFile(dst, img)
	got := make([][]byte, len(want))
	for e := range want {
		got[e] = make([]byte, len(want[e]))
	}
	if err := plan.ExecuteRange(srcBufs, got, 0, 64); err != nil {
		t.Fatal(err)
	}
	for e := range want {
		if !bytes.Equal(got[e], want[e]) {
			t.Fatalf("full-range execution differs on element %d", e)
		}
	}
}

// TestPropertyExecuteRangeIncremental: updating a sub-range touches
// exactly the destination bytes of that file range.
func TestPropertyExecuteRangeIncremental(t *testing.T) {
	rng := rand.New(rand.NewSource(190))
	for iter := 0; iter < 60; iter++ {
		z1 := int64(8 * (1 + rng.Intn(5)))
		z2 := int64(8 * (1 + rng.Intn(5)))
		src := fileAround(t, randSetIn(rng, z1), z1, 0)
		dst := fileAround(t, randSetIn(rng, z2), z2, 0)
		plan, err := NewPlan(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		total := 2 * falls64Lcm(z1, z2)
		imgOld := image(total, int64(iter))
		imgNew := image(total, int64(iter)+1000)
		from := rng.Int63n(total)
		length := rng.Int63n(total - from)

		// Source holds the NEW data; destination starts from the OLD
		// decomposition. After the range update, the destination must
		// equal the decomposition of (old with [from, from+length)
		// replaced by new).
		srcBufs := SplitFile(src, imgNew)
		got := SplitFile(dst, imgOld)
		mixed := append([]byte(nil), imgOld...)
		copy(mixed[from:from+length], imgNew[from:from+length])
		want := SplitFile(dst, mixed)

		if err := plan.ExecuteRange(srcBufs, got, from, length); err != nil {
			t.Fatalf("iter %d: %v", iter, err)
		}
		for e := range want {
			if !bytes.Equal(got[e], want[e]) {
				t.Fatalf("iter %d: incremental update wrong on element %d (from=%d len=%d)",
					iter, e, from, length)
			}
		}
	}
}

func TestExecuteRangeValidation(t *testing.T) {
	rows, _ := part.RowBlocks(8, 8, 4)
	plan, _ := NewPlan(part.MustFile(0, rows), part.MustFile(0, rows))
	bufs := make([][]byte, 4)
	for i := range bufs {
		bufs[i] = make([]byte, 16)
	}
	if err := plan.ExecuteRange(bufs, bufs, -1, 4); err == nil {
		t.Error("negative start accepted")
	}
	if err := plan.ExecuteRange(bufs, bufs, 0, -4); err == nil {
		t.Error("negative length accepted")
	}
	if err := plan.ExecuteRange(bufs[:1], bufs, 0, 4); err == nil {
		t.Error("bad source count accepted")
	}
	if err := plan.ExecuteRange(bufs, bufs, 0, 0); err != nil {
		t.Errorf("zero length should be a no-op: %v", err)
	}
}

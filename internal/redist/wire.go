package redist

import (
	"fmt"

	"parafile/internal/codec"
)

// wire.go is the projection wire format: the encoding Clusterfile uses
// to ship PROJ_S to the I/O nodes at view-set time (§8.1). It is built
// on the codec primitives and byte-compatible with the format the
// codec package historically produced; it lives here (rather than in
// codec) so that codec stays free of redist types and the plan cache
// can use codec.EncodeFile as its fingerprint without an import cycle.

// EncodeProjection encodes a projection (set, period, bytes).
func EncodeProjection(p *Projection) []byte {
	buf := codec.AppendUvarint(nil, codec.Version)
	buf = codec.AppendVarint(buf, p.Period)
	buf = codec.AppendVarint(buf, p.Bytes)
	buf = codec.AppendSet(buf, p.Set)
	return buf
}

// DecodeProjection decodes a projection; the whole buffer must be
// consumed.
func DecodeProjection(buf []byte) (*Projection, error) {
	v, buf, err := codec.ReadUvarint(buf)
	if err != nil {
		return nil, err
	}
	if v != codec.Version {
		return nil, fmt.Errorf("%w: unknown version %d", codec.ErrCorrupt, v)
	}
	p := &Projection{}
	if p.Period, buf, err = codec.ReadVarint(buf); err != nil {
		return nil, err
	}
	if p.Bytes, buf, err = codec.ReadVarint(buf); err != nil {
		return nil, err
	}
	if p.Set, buf, err = codec.DecodeSet(buf); err != nil {
		return nil, err
	}
	if len(buf) != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", codec.ErrCorrupt, len(buf))
	}
	if p.Set.Size() != p.Bytes {
		return nil, fmt.Errorf("%w: set size %d != declared bytes %d",
			codec.ErrCorrupt, p.Set.Size(), p.Bytes)
	}
	return p, nil
}

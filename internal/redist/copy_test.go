package redist

import (
	"bytes"
	"math/rand"
	"testing"

	"parafile/internal/core"
	"parafile/internal/falls"
)

// TestGatherScatterFigure5 reproduces the §8 example: gathering the
// view data between lo=0 and hi=4 with the projection {(0,0,4,2)}
// packs view bytes {0, 4}; scattering restores them.
func TestGatherScatterFigure5(t *testing.T) {
	fv := fileAround(t, fig4V(), 32, 0)
	fs := fileAround(t, fig4S(), 32, 0)
	inter, _ := IntersectElements(fv, 0, fs, 0)
	pv, err := Project(inter, core.MustMapper(fv, 0))
	if err != nil {
		t.Fatal(err)
	}
	view := []byte{10, 11, 12, 13, 14, 15, 16, 17} // 8 view bytes
	buf2 := make([]byte, 2)
	n, err := Gather(buf2, view, pv, 0, 4)
	if err != nil || n != 2 {
		t.Fatalf("Gather = %d, %v; want 2", n, err)
	}
	if buf2[0] != 10 || buf2[1] != 14 {
		t.Errorf("gathered %v, want [10 14] (view bytes 0 and 4)", buf2)
	}
	// Scatter back into a fresh view buffer.
	out := make([]byte, 8)
	n, err = Scatter(out, buf2, pv, 0, 4)
	if err != nil || n != 2 {
		t.Fatalf("Scatter = %d, %v; want 2", n, err)
	}
	if out[0] != 10 || out[4] != 14 {
		t.Errorf("scattered %v, want bytes 0 and 4 restored", out)
	}
}

// TestPropertyGatherScatterRoundTrip: scatter(gather(x)) restores the
// selected bytes for random projections and windows.
func TestPropertyGatherScatterRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	for iter := 0; iter < 100; iter++ {
		z1 := int64(8 * (1 + rng.Intn(6)))
		z2 := int64(8 * (1 + rng.Intn(6)))
		f1 := fileAround(t, randSetIn(rng, z1), z1, 0)
		f2 := fileAround(t, randSetIn(rng, z2), z2, 0)
		inter, err := IntersectElements(f1, 0, f2, 0)
		if err != nil {
			t.Fatal(err)
		}
		if inter.Empty() {
			continue
		}
		proj, err := Project(inter, core.MustMapper(f1, 0))
		if err != nil {
			t.Fatal(err)
		}
		span := 3 * proj.Period
		src := image(span, int64(iter))
		lo := rng.Int63n(span)
		hi := lo + rng.Int63n(span-lo)
		want := proj.BytesIn(lo, hi)
		buf := make([]byte, want)
		n, err := Gather(buf, src, proj, lo, hi)
		if err != nil || n != want {
			t.Fatalf("Gather = %d, %v; want %d", n, err, want)
		}
		dst := make([]byte, span)
		n, err = Scatter(dst, buf, proj, lo, hi)
		if err != nil || n != want {
			t.Fatalf("Scatter = %d, %v; want %d", n, err, want)
		}
		// Every selected byte must round-trip; unselected bytes stay 0.
		sel := make([]bool, span)
		proj.WalkRange(lo, hi, func(seg falls.LineSegment) bool {
			for x := seg.L; x <= seg.R; x++ {
				sel[x] = true
			}
			return true
		})
		for x := int64(0); x < span; x++ {
			if sel[x] && dst[x] != src[x] {
				t.Fatalf("byte %d lost in round trip", x)
			}
			if !sel[x] && dst[x] != 0 {
				t.Fatalf("byte %d written outside selection", x)
			}
		}
	}
}

// TestGatherScatterErrors: undersized buffers fail without corruption.
func TestGatherScatterErrors(t *testing.T) {
	fv := fileAround(t, fig4V(), 32, 0)
	fs := fileAround(t, fig4S(), 32, 0)
	inter, _ := IntersectElements(fv, 0, fs, 0)
	pv, _ := Project(inter, core.MustMapper(fv, 0))
	view := make([]byte, 8)
	if _, err := Gather(make([]byte, 1), view, pv, 0, 7); err == nil {
		t.Error("short gather destination accepted")
	}
	if _, err := Gather(make([]byte, 8), make([]byte, 2), pv, 0, 7); err == nil {
		t.Error("short gather source accepted")
	}
	if _, err := Scatter(make([]byte, 2), make([]byte, 8), pv, 0, 7); err == nil {
		t.Error("short scatter destination accepted")
	}
	if _, err := Scatter(make([]byte, 8), make([]byte, 0), pv, 0, 7); err == nil {
		t.Error("short scatter source accepted")
	}
}

// TestGatherSetMatchesGather: the plain-set variants agree with the
// projection variants inside the first period.
func TestGatherSetMatchesGather(t *testing.T) {
	fv := fileAround(t, fig4V(), 32, 0)
	fs := fileAround(t, fig4S(), 32, 0)
	inter, _ := IntersectElements(fv, 0, fs, 0)
	pv, _ := Project(inter, core.MustMapper(fv, 0))
	src := image(pv.Period, 3)
	a := make([]byte, pv.Bytes)
	b := make([]byte, pv.Bytes)
	if _, err := Gather(a, src, pv, 0, pv.Period-1); err != nil {
		t.Fatal(err)
	}
	if _, err := GatherSet(b, src, pv.Set, 0, pv.Period-1); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Errorf("GatherSet %v != Gather %v", b, a)
	}
	// Scatter parity.
	d1 := make([]byte, pv.Period)
	d2 := make([]byte, pv.Period)
	if _, err := Scatter(d1, a, pv, 0, pv.Period-1); err != nil {
		t.Fatal(err)
	}
	if _, err := ScatterSet(d2, a, pv.Set, 0, pv.Period-1); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(d1, d2) {
		t.Errorf("ScatterSet != Scatter")
	}
}

// TestScatterSetErrors mirrors the projection error tests for the set
// variants.
func TestScatterSetErrors(t *testing.T) {
	s := falls.Set{falls.MustLeaf(0, 1, 4, 3)}
	if _, err := GatherSet(make([]byte, 1), make([]byte, 12), s, 0, 11); err == nil {
		t.Error("short GatherSet destination accepted")
	}
	if _, err := GatherSet(make([]byte, 6), make([]byte, 3), s, 0, 11); err == nil {
		t.Error("short GatherSet source accepted")
	}
	if _, err := ScatterSet(make([]byte, 3), make([]byte, 6), s, 0, 11); err == nil {
		t.Error("short ScatterSet destination accepted")
	}
	if _, err := ScatterSet(make([]byte, 12), make([]byte, 1), s, 0, 11); err == nil {
		t.Error("short ScatterSet source accepted")
	}
}

// TestPartElementBytesConsistency: SplitFile buffer sizes equal
// ElementBytes (ties part and redist together).
func TestPartElementBytesConsistency(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for iter := 0; iter < 30; iter++ {
		z := int64(8 * (1 + rng.Intn(6)))
		f := fileAround(t, randSetIn(rng, z), z, 0)
		length := 1 + rng.Int63n(3*z)
		bufs := SplitFile(f, image(length, int64(iter)))
		for e, b := range bufs {
			if int64(len(b)) != f.ElementBytes(e, length) {
				t.Fatalf("element %d: buffer %d bytes, ElementBytes says %d",
					e, len(b), f.ElementBytes(e, length))
			}
		}
	}
}

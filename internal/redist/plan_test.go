package redist

import (
	"bytes"
	"math/rand"
	"testing"

	"parafile/internal/part"
)

// image returns a deterministic pseudo-random file image.
func image(n int64, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	b := make([]byte, n)
	rng.Read(b)
	return b
}

// checkRedistribution redistributes an image from src to dst layout
// and verifies every destination buffer byte-for-byte.
func checkRedistribution(t *testing.T, src, dst *part.File, length int64, parallel int) {
	t.Helper()
	img := image(length, length+int64(parallel))
	srcBufs := SplitFile(src, img)
	wantDst := SplitFile(dst, img)
	gotDst := make([][]byte, len(wantDst))
	for i := range wantDst {
		gotDst[i] = make([]byte, len(wantDst[i]))
	}
	plan, err := NewPlan(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if parallel > 1 {
		err = plan.ExecuteParallel(srcBufs, gotDst, length, parallel)
	} else {
		err = plan.Execute(srcBufs, gotDst, length)
	}
	if err != nil {
		t.Fatal(err)
	}
	for e := range wantDst {
		if !bytes.Equal(gotDst[e], wantDst[e]) {
			t.Fatalf("destination element %d differs after redistribution\nsrc=%v\ndst=%v",
				e, src.Pattern, dst.Pattern)
		}
	}
}

// TestPlanMatrixLayouts redistributes an 8×8 matrix between all pairs
// of the paper's three layouts, in both directions.
func TestPlanMatrixLayouts(t *testing.T) {
	rows, _ := part.RowBlocks(8, 8, 4)
	cols, _ := part.ColBlocks(8, 8, 4)
	sq, _ := part.SquareBlocks(8, 8, 2, 2)
	layouts := map[string]*part.Pattern{"rows": rows, "cols": cols, "square": sq}
	for an, a := range layouts {
		for bn, b := range layouts {
			t.Run(an+"->"+bn, func(t *testing.T) {
				checkRedistribution(t, part.MustFile(0, a), part.MustFile(0, b), 64, 1)
			})
		}
	}
}

// TestPlanMultiplePeriods exercises pattern repetition: data much
// longer than one pattern period, including a partial final period.
func TestPlanMultiplePeriods(t *testing.T) {
	stripes, _ := part.Stripe(4, 3) // 12-byte pattern
	blocks, _ := part.Cyclic1D(12, 2, 3)
	src := part.MustFile(0, stripes)
	dst := part.MustFile(0, blocks)
	for _, length := range []int64{12, 24, 36, 7, 13, 31} {
		checkRedistribution(t, src, dst, length, 1)
	}
}

// TestPlanParallelMatchesSerial: parallel execution produces the same
// result as serial.
func TestPlanParallelMatchesSerial(t *testing.T) {
	rows, _ := part.RowBlocks(16, 16, 4)
	cols, _ := part.ColBlocks(16, 16, 4)
	checkRedistribution(t, part.MustFile(0, rows), part.MustFile(0, cols), 256, 4)
	checkRedistribution(t, part.MustFile(0, rows), part.MustFile(0, cols), 200, 8)
}

// TestPlanIdentity: redistributing between identical partitions is the
// identity on every element, with one transfer per element.
func TestPlanIdentity(t *testing.T) {
	rows, _ := part.RowBlocks(8, 8, 4)
	src := part.MustFile(0, rows)
	dst := part.MustFile(0, rows)
	plan, err := NewPlan(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Transfers) != 4 {
		t.Errorf("identity plan has %d transfers, want 4", len(plan.Transfers))
	}
	for _, tr := range plan.Transfers {
		if tr.SrcElem != tr.DstElem {
			t.Errorf("identity plan transfers %d -> %d", tr.SrcElem, tr.DstElem)
		}
		if len(tr.triples) != 1 {
			t.Errorf("identity transfer %d has %d runs, want 1 contiguous run", tr.SrcElem, len(tr.triples))
		}
	}
	checkRedistribution(t, src, dst, 64, 1)
}

// TestPlanBytesAccounting: the plan moves exactly the file bytes per
// period, and fragmentation grows for poor matches.
func TestPlanBytesAccounting(t *testing.T) {
	rows, _ := part.RowBlocks(8, 8, 4)
	cols, _ := part.ColBlocks(8, 8, 4)
	planRR, _ := NewPlan(part.MustFile(0, rows), part.MustFile(0, rows))
	planRC, _ := NewPlan(part.MustFile(0, rows), part.MustFile(0, cols))
	if got := planRR.BytesPerPeriod(); got != 64 {
		t.Errorf("rows->rows moves %d bytes per period, want 64", got)
	}
	if got := planRC.BytesPerPeriod(); got != 64 {
		t.Errorf("rows->cols moves %d bytes per period, want 64", got)
	}
	if rr, rc := planRR.SegmentsPerPeriod(), planRC.SegmentsPerPeriod(); rc <= rr {
		t.Errorf("rows->cols should fragment more than rows->rows: %d vs %d", rc, rr)
	}
}

// TestPlanDifferentDisplacements: redistribution between files whose
// patterns start at different displacements.
func TestPlanDifferentDisplacements(t *testing.T) {
	s1, _ := part.Stripe(4, 2)
	s2, _ := part.Stripe(2, 2)
	src := part.MustFile(0, s1)
	dst := part.MustFile(8, s2) // aligned: base = 8, a whole src period
	plan, err := NewPlan(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Base != 8 {
		t.Fatalf("base = %d, want 8", plan.Base)
	}
	// Build an image of the shared region [8, 8+24): source element
	// buffers must cover their bytes of file range [0, 32) (offsets
	// from the source displacement 0), destination ones from
	// displacement 8.
	img := image(32, 7)
	srcBufs := SplitFile(src, img)
	wantDst := SplitFile(dst, img[8:])
	gotDst := make([][]byte, len(wantDst))
	for i := range wantDst {
		gotDst[i] = make([]byte, len(wantDst[i]))
	}
	if err := plan.Execute(srcBufs, gotDst, 24); err != nil {
		t.Fatal(err)
	}
	for e := range wantDst {
		if !bytes.Equal(gotDst[e], wantDst[e]) {
			t.Fatalf("element %d differs with displacement alignment", e)
		}
	}
}

// TestPropertyPlanRandomPartitions: random partition pairs preserve
// content.
func TestPropertyPlanRandomPartitions(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	for iter := 0; iter < 60; iter++ {
		z1 := int64(8 * (1 + rng.Intn(6)))
		z2 := int64(8 * (1 + rng.Intn(6)))
		src := fileAround(t, randSetIn(rng, z1), z1, 0)
		dst := fileAround(t, randSetIn(rng, z2), z2, 0)
		length := 1 + rng.Int63n(3*falls64Lcm(z1, z2))
		checkRedistribution(t, src, dst, length, 1+rng.Intn(3))
	}
}

func falls64Lcm(a, b int64) int64 {
	g := a
	x := b
	for x != 0 {
		g, x = x, g%x
	}
	return a / g * b
}

func TestPlanExecuteValidation(t *testing.T) {
	rows, _ := part.RowBlocks(8, 8, 4)
	plan, err := NewPlan(part.MustFile(0, rows), part.MustFile(0, rows))
	if err != nil {
		t.Fatal(err)
	}
	good := make([][]byte, 4)
	for i := range good {
		good[i] = make([]byte, 16)
	}
	if err := plan.Execute(good[:2], good, 64); err == nil {
		t.Error("wrong source buffer count accepted")
	}
	if err := plan.Execute(good, good[:1], 64); err == nil {
		t.Error("wrong destination buffer count accepted")
	}
	if err := plan.Execute(good, good, -1); err == nil {
		t.Error("negative length accepted")
	}
	short := [][]byte{make([]byte, 1), make([]byte, 1), make([]byte, 1), make([]byte, 1)}
	if err := plan.Execute(short, good, 64); err == nil {
		t.Error("short source buffer accepted")
	}
	if err := plan.Execute(good, short, 64); err == nil {
		t.Error("short destination buffer accepted")
	}
	if err := plan.Execute(good, good, 0); err != nil {
		t.Errorf("zero length should be a no-op, got %v", err)
	}
}

// TestSplitJoinRoundTrip: JoinFile inverts SplitFile.
func TestSplitJoinRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for iter := 0; iter < 40; iter++ {
		z := int64(8 * (1 + rng.Intn(8)))
		f := fileAround(t, randSetIn(rng, z), z, 0)
		length := 1 + rng.Int63n(4*z)
		img := image(length, int64(iter))
		elems := SplitFile(f, img)
		back, err := JoinFile(f, elems, length)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(img, back) {
			t.Fatalf("split/join round trip failed for %v length %d", f.Pattern, length)
		}
	}
}

// TestPropertyPlanRandomDisplacements: plans between partitions with
// different displacements redistribute the common region correctly.
func TestPropertyPlanRandomDisplacements(t *testing.T) {
	rng := rand.New(rand.NewSource(220))
	for iter := 0; iter < 50; iter++ {
		z1 := int64(8 * (1 + rng.Intn(4)))
		z2 := int64(8 * (1 + rng.Intn(4)))
		d1 := rng.Int63n(12)
		d2 := rng.Int63n(12)
		src := fileAround(t, randSetIn(rng, z1), z1, d1)
		dst := fileAround(t, randSetIn(rng, z2), z2, d2)
		plan, err := NewPlan(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		base := d1
		if d2 > base {
			base = d2
		}
		length := 1 + rng.Int63n(2*falls64Lcm(z1, z2))
		// A file image covering everything from offset 0.
		img := image(base+length, int64(iter))
		srcBufs := SplitFile(src, img[d1:])
		// Expected destination: its decomposition of the image, but
		// only the bytes in [base, base+length) are written; the rest
		// stays zero.
		masked := make([]byte, base+length)
		copy(masked[base:], img[base:base+length])
		want := SplitFile(dst, masked[d2:])
		got := make([][]byte, len(want))
		for e := range want {
			got[e] = make([]byte, len(want[e]))
		}
		if err := plan.Execute(srcBufs, got, length); err != nil {
			t.Fatalf("iter %d (d1=%d d2=%d len=%d): %v", iter, d1, d2, length, err)
		}
		for e := range want {
			if !bytes.Equal(got[e], want[e]) {
				t.Fatalf("iter %d: displaced plan wrong on element %d (d1=%d d2=%d z1=%d z2=%d len=%d)",
					iter, e, d1, d2, z1, z2, length)
			}
		}
	}
}

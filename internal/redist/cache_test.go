package redist

import (
	"testing"

	"parafile/internal/part"
)

func cachePair(t *testing.T, n int64) (*part.File, *part.File) {
	t.Helper()
	rows, err := part.RowBlocks(n, n, 4)
	if err != nil {
		t.Fatal(err)
	}
	cols, err := part.ColBlocks(n, n, 4)
	if err != nil {
		t.Fatal(err)
	}
	return part.MustFile(0, rows), part.MustFile(0, cols)
}

func TestFingerprintDistinguishesGeometry(t *testing.T) {
	src, dst := cachePair(t, 8)
	base := Fingerprint(src, dst)
	if Fingerprint(src, dst) != base {
		t.Fatal("fingerprint not deterministic")
	}
	// Displacement matters.
	shifted := part.MustFile(3, src.Pattern)
	if Fingerprint(shifted, dst) == base {
		t.Error("displacement change kept the fingerprint")
	}
	// Pattern matters.
	sq, err := part.SquareBlocks(8, 8, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	if Fingerprint(part.MustFile(0, sq), dst) == base {
		t.Error("pattern change kept the fingerprint")
	}
	// Direction matters.
	if Fingerprint(dst, src) == base {
		t.Error("swapped pair kept the fingerprint")
	}
}

func TestPlanCacheGetOrCompile(t *testing.T) {
	src, dst := cachePair(t, 8)
	c := NewPlanCache(4, CompileOptions{})
	p1, hit, err := c.GetOrCompile(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first lookup reported a hit")
	}
	p2, hit, err := c.GetOrCompile(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("second lookup missed")
	}
	if p1 != p2 {
		t.Fatal("hit returned a different plan pointer")
	}
	// An equal-geometry file built independently hits the same entry.
	src2, dst2 := cachePair(t, 8)
	p3, hit, err := c.GetOrCompile(src2, dst2)
	if err != nil {
		t.Fatal(err)
	}
	if !hit || p3 != p1 {
		t.Fatal("structurally equal pair missed the cache")
	}
	s := c.Stats()
	if s.Hits != 2 || s.Misses != 1 {
		t.Fatalf("stats = %+v, want 2 hits 1 miss", s)
	}
	// The cached plan still redistributes correctly.
	img := image(64, 1)
	srcBufs := SplitFile(src, img)
	want := SplitFile(dst, img)
	got := make([][]byte, len(want))
	for i := range want {
		got[i] = make([]byte, len(want[i]))
	}
	if err := p2.Execute(srcBufs, got, 64); err != nil {
		t.Fatal(err)
	}
	for e := range want {
		if string(got[e]) != string(want[e]) {
			t.Fatalf("cached plan wrong on element %d", e)
		}
	}
}

func TestPlanCacheEviction(t *testing.T) {
	pairs := make([][2]*part.File, 3)
	for i := range pairs {
		n := int64(8 * (i + 1))
		src, dst := cachePair(t, n)
		pairs[i] = [2]*part.File{src, dst}
	}
	c := NewPlanCache(2, CompileOptions{})
	for _, p := range pairs {
		if _, _, err := c.GetOrCompile(p[0], p[1]); err != nil {
			t.Fatal(err)
		}
	}
	if c.Len() != 2 {
		t.Fatalf("len = %d, want 2", c.Len())
	}
	// Pair 0 is the least recently used and must be gone.
	if _, ok := c.Get(pairs[0][0], pairs[0][1]); ok {
		t.Error("LRU entry survived eviction")
	}
	for _, p := range pairs[1:] {
		if _, ok := c.Get(p[0], p[1]); !ok {
			t.Error("recent entry evicted")
		}
	}
	if s := c.Stats(); s.Evictions != 1 {
		t.Errorf("evictions = %d, want 1", s.Evictions)
	}
	// Touching an entry protects it from the next eviction.
	if _, ok := c.Get(pairs[1][0], pairs[1][1]); !ok {
		t.Fatal("pair 1 missing")
	}
	if _, _, err := c.GetOrCompile(pairs[0][0], pairs[0][1]); err != nil {
		t.Fatal(err)
	}
	if _, ok := c.Get(pairs[2][0], pairs[2][1]); ok {
		t.Error("LRU order ignored: pair 2 should have been evicted")
	}
	if _, ok := c.Get(pairs[1][0], pairs[1][1]); !ok {
		t.Error("recently touched pair 1 evicted")
	}
}

func TestPlanCacheInvalidateAndPurge(t *testing.T) {
	src, dst := cachePair(t, 8)
	c := NewPlanCache(4, CompileOptions{})
	if c.Invalidate(src, dst) {
		t.Error("invalidate on empty cache reported true")
	}
	if _, _, err := c.GetOrCompile(src, dst); err != nil {
		t.Fatal(err)
	}
	if !c.Invalidate(src, dst) {
		t.Error("invalidate missed the cached entry")
	}
	if _, ok := c.Get(src, dst); ok {
		t.Error("entry survived invalidation")
	}
	if _, _, err := c.GetOrCompile(src, dst); err != nil {
		t.Fatal(err)
	}
	c.Purge()
	if c.Len() != 0 {
		t.Errorf("len after purge = %d", c.Len())
	}
}

func TestPlanCachePut(t *testing.T) {
	src, dst := cachePair(t, 8)
	plan, err := NewPlan(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	c := NewPlanCache(4, CompileOptions{})
	c.Put(src, dst, plan)
	got, hit, err := c.GetOrCompile(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	if !hit || got != plan {
		t.Fatal("Put entry not returned by GetOrCompile")
	}
}

func TestPairCacheMatchesDirect(t *testing.T) {
	src, dst := cachePair(t, 16)
	c := NewPairCache(8)
	for e1 := 0; e1 < src.Pattern.Len(); e1++ {
		for e2 := 0; e2 < dst.Pattern.Len(); e2++ {
			wantI, wantP1, wantP2, err := IntersectProjectElements(src, e1, dst, e2)
			if err != nil {
				t.Fatal(err)
			}
			gotI, gotP1, gotP2, err := c.IntersectProject(src, e1, dst, e2)
			if err != nil {
				t.Fatal(err)
			}
			if gotI.Period != wantI.Period || gotI.Base != wantI.Base || !gotI.Set.Equal(wantI.Set) {
				t.Fatalf("pair (%d,%d): cached intersection differs", e1, e2)
			}
			if !gotP1.Set.Equal(wantP1.Set) || !gotP2.Set.Equal(wantP2.Set) {
				t.Fatalf("pair (%d,%d): cached projections differ", e1, e2)
			}
			// Second call must hit and return the identical objects.
			againI, _, _, err := c.IntersectProject(src, e1, dst, e2)
			if err != nil {
				t.Fatal(err)
			}
			if againI != gotI {
				t.Fatalf("pair (%d,%d): warm lookup recomputed", e1, e2)
			}
		}
	}
	s := c.Stats()
	pairs := uint64(src.Pattern.Len() * dst.Pattern.Len())
	if s.Misses != pairs || s.Hits != pairs {
		t.Errorf("stats = %+v, want %d misses and %d hits", s, pairs, pairs)
	}
	// Element indices are part of the key: (0,1) must not alias (1,0).
	if pairKey(src, 0, dst, 1) == pairKey(src, 1, dst, 0) {
		t.Error("pair keys alias across element indices")
	}
}

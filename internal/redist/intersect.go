// Package redist implements the paper's redistribution algorithm
// (§7): intersection of two sets of nested FALLS belonging to two
// partitions of the same file, projection of the intersection onto the
// linear spaces of the intersected elements, and plan-driven data
// movement (gather / scatter, §8) between arbitrary partitions.
package redist

import (
	"fmt"
	"sort"

	"parafile/internal/falls"
	"parafile/internal/part"
)

// Intersection is the set of file bytes common to two partition
// elements. The result is periodic: Set describes one period of
// length Period (the lcm of the two pattern sizes), with coordinate 0
// at absolute file offset Base (the larger of the two displacements).
type Intersection struct {
	Set    falls.Set
	Period int64
	Base   int64
}

// Empty reports whether the elements share no bytes.
func (i *Intersection) Empty() bool { return len(i.Set) == 0 }

// BytesPerPeriod returns the number of common bytes per period.
func (i *Intersection) BytesPerPeriod() int64 { return i.Set.Size() }

// IntersectElements intersects element e1 of file f1 with element e2
// of file f2, two partitions of the same underlying file. This is the
// paper's INTERSECT with its PREPROCESS phase: both patterns are
// extended to the lcm of their sizes and aligned at the larger
// displacement, then the nested FALLS trees are intersected
// recursively.
func IntersectElements(f1 *part.File, e1 int, f2 *part.File, e2 int) (*Intersection, error) {
	if f1 == nil || f2 == nil {
		return nil, fmt.Errorf("redist: nil file")
	}
	if e1 < 0 || e1 >= f1.Pattern.Len() || e2 < 0 || e2 >= f2.Pattern.Len() {
		return nil, fmt.Errorf("redist: element index out of range (%d of %d, %d of %d)",
			e1, f1.Pattern.Len(), e2, f2.Pattern.Len())
	}
	z1, z2 := f1.Pattern.Size(), f2.Pattern.Size()
	period := falls.Lcm64(z1, z2)
	base := max64(f1.Displacement, f2.Displacement)

	s1 := prepare(f1.Pattern.Element(e1).Set, z1, period, base-f1.Displacement)
	s2 := prepare(f2.Pattern.Element(e2).Set, z2, period, base-f2.Displacement)

	res := intersectSets(s1, 0, s2, 0, 0, period-1)
	return &Intersection{Set: res, Period: period, Base: base}, nil
}

// prepare implements PREPROCESS for one element: extend the element's
// set over the common period and rotate its phase so that coordinate 0
// corresponds to the common base offset.
func prepare(set falls.Set, patternSize, period, shift int64) falls.Set {
	ext := extend(set, patternSize, period)
	if falls.Mod64(shift, period) == 0 {
		return ext
	}
	return falls.Rotate(ext, period, shift)
}

// extend wraps a set whose coordinates live in [0, patternSize) into
// an equivalent set covering period bytes (period a multiple of
// patternSize) by adding an outer FALLS — the paper's height
// adjustment "adding outer FALLS".
func extend(set falls.Set, patternSize, period int64) falls.Set {
	reps := period / patternSize
	if reps == 1 {
		return set
	}
	outer := falls.FALLS{L: 0, R: patternSize - 1, S: patternSize, N: reps}
	return falls.Set{{FALLS: outer, Inner: set.Clone()}}
}

// intersectSets is INTERSECT-AUX: intersect two sets of nested FALLS
// within the window [w0, w1] of a common coordinate frame. Member
// coordinates of s1 are offset by base1 in that frame (frame position
// = base1 + coordinate), likewise s2/base2. The result is a valid
// falls.Set in frame coordinates.
func intersectSets(s1 falls.Set, base1 int64, s2 falls.Set, base2 int64, w0, w1 int64) falls.Set {
	var pieces []*falls.Nested
	for _, m1 := range s1 {
		for _, m2 := range s2 {
			pieces = append(pieces, intersectMembers(m1, base1, m2, base2, w0, w1)...)
		}
	}
	return assemble(pieces)
}

// intersectMembers intersects two nested FALLS members in the common
// frame, recursing into their inner sets.
func intersectMembers(m1 *falls.Nested, base1 int64, m2 *falls.Nested, base2 int64, w0, w1 int64) []*falls.Nested {
	abs1 := m1.FALLS.Shift(base1)
	abs2 := m2.FALLS.Shift(base2)
	c1 := falls.CutFALLSAbs(abs1, w0, w1)
	c2 := falls.CutFALLSAbs(abs2, w0, w1)
	var out []*falls.Nested
	for _, g1 := range c1 {
		for _, g2 := range c2 {
			h1, h2 := harmonize(g1, m1, g2, m2)
			for _, gg1 := range h1 {
				for _, gg2 := range h2 {
					for _, p := range intersectFlat(gg1, gg2) {
						n := attachInner(p, m1, base1, m2, base2)
						if n != nil {
							out = append(out, n)
						}
					}
				}
			}
		}
	}
	return out
}

// harmonize aligns the representation granularity of two cut pieces
// before the flat intersection: a single dense segment meeting a
// regular family is re-expressed on the family's stride grid, so the
// intersection produces one family per phase instead of one piece per
// overlapped segment. Re-striping is only valid for childless members
// (a dense block has no inner geometry to misalign).
func harmonize(g1 falls.FALLS, m1 *falls.Nested, g2 falls.FALLS, m2 *falls.Nested) ([]falls.FALLS, []falls.FALLS) {
	h1 := []falls.FALLS{g1}
	h2 := []falls.FALLS{g2}
	if g1.N == 1 && g2.N > 1 && len(m1.Inner) == 0 && g1.BlockLen() >= 2*g2.S {
		h1 = restripe(g1, g2.L, g2.S)
	}
	if g2.N == 1 && g1.N > 1 && len(m2.Inner) == 0 && g2.BlockLen() >= 2*g1.S {
		h2 = restripe(g2, g1.L, g1.S)
	}
	return h1, h2
}

// restripe splits the single segment g into a family on the stride
// grid anchored at refL (phase refL mod stride), plus partial head and
// tail segments. The byte set is unchanged.
func restripe(g falls.FALLS, refL, stride int64) []falls.FALLS {
	lo, hi := g.L, g.R
	// First grid boundary at or after lo.
	t0 := refL + ceilDiv(lo-refL, stride)*stride
	var out []falls.FALLS
	if t0 > lo {
		head := min64(t0-1, hi)
		out = append(out, falls.FromSegment(falls.LineSegment{L: lo, R: head}))
		if head == hi {
			return out
		}
	}
	n := (hi - t0 + 1) / stride
	if n > 0 {
		out = append(out, falls.FALLS{L: t0, R: t0 + stride - 1, S: stride, N: n})
	}
	tail := t0 + n*stride
	if tail <= hi {
		out = append(out, falls.FromSegment(falls.LineSegment{L: tail, R: hi}))
	}
	return out
}

// intersectFlat computes the raw overlap pieces of two flat FALLS.
// Unlike falls.IntersectFALLS it does not normalize: every piece is
// either a single segment or a family whose stride is the lcm of the
// input strides, which the inner recursion relies on (the within-block
// offset of a piece is then identical for all of its repetitions).
func intersectFlat(f1, f2 falls.FALLS) []falls.FALLS {
	w0 := max64(f1.L, f2.L)
	w1 := min64(f1.Extent(), f2.Extent())
	if w1 < w0 {
		return nil
	}
	period := falls.Lcm64(f1.S, f2.S)
	k1 := period / f1.S
	k2 := period / f2.S
	var out []falls.FALLS
	emit := func(i, j int64) {
		seg1 := falls.LineSegment{L: f1.L + i*f1.S, R: f1.R + i*f1.S}
		seg2 := falls.LineSegment{L: f2.L + j*f2.S, R: f2.R + j*f2.S}
		ov, ok := seg1.Intersect(seg2)
		if !ok {
			return
		}
		n := min64((f1.N-1-i)/k1, (f2.N-1-j)/k2) + 1
		out = append(out, falls.FALLS{L: ov.L, R: ov.R, S: period, N: n})
	}
	for i := int64(0); i < min64(f1.N, k1); i++ {
		a, b := f1.L+i*f1.S, f1.R+i*f1.S
		jlo := max64(ceilDiv(a-f2.R, f2.S), 0)
		jhi := min64(floorDiv(b-f2.L, f2.S), f2.N-1)
		for j := jlo; j <= jhi; j++ {
			emit(i, j)
		}
	}
	for j := int64(0); j < min64(f2.N, k2); j++ {
		c, d := f2.L+j*f2.S, f2.R+j*f2.S
		ilo := max64(ceilDiv(c-f1.R, f1.S), k1)
		ihi := min64(floorDiv(d-f1.L, f1.S), f1.N-1)
		for i := ilo; i <= ihi; i++ {
			emit(i, j)
		}
	}
	return out
}

// attachInner recurses into the inner sets of the two parents for one
// flat overlap piece, returning the nested intersection member (or nil
// when no inner bytes are common).
func attachInner(p falls.FALLS, m1 *falls.Nested, base1 int64, m2 *falls.Nested, base2 int64) *falls.Nested {
	if len(m1.Inner) == 0 && len(m2.Inner) == 0 {
		return falls.Leaf(p)
	}
	// Offsets of the piece start within its containing blocks. These
	// are identical for every repetition of the piece because the
	// piece stride is a multiple of both parents' strides.
	o1 := falls.Mod64(p.L-base1-m1.L, m1.S)
	o2 := falls.Mod64(p.L-base2-m2.L, m2.S)
	in1 := m1.Inner
	if len(in1) == 0 {
		in1 = denseSet(m1.BlockLen())
	}
	in2 := m2.Inner
	if len(in2) == 0 {
		in2 = denseSet(m2.BlockLen())
	}
	// New frame: piece-local coordinates [0, blockLen-1]. Inner
	// coordinates are relative to their block starts, which sit at
	// -o1 / -o2 in the piece frame.
	inner := intersectSets(in1, -o1, in2, -o2, 0, p.BlockLen()-1)
	if len(inner) == 0 {
		return nil
	}
	if isDense(inner, p.BlockLen()) {
		return falls.Leaf(p)
	}
	return &falls.Nested{FALLS: p, Inner: inner}
}

// denseSet describes the whole block [0, blockLen) as a single leaf.
func denseSet(blockLen int64) falls.Set {
	return falls.Set{falls.Leaf(falls.FALLS{L: 0, R: blockLen - 1, S: blockLen, N: 1})}
}

// isDense reports whether the set is exactly one leaf covering
// [0, blockLen).
func isDense(s falls.Set, blockLen int64) bool {
	return len(s) == 1 && len(s[0].Inner) == 0 &&
		s[0].L == 0 && s[0].N == 1 && s[0].R == blockLen-1
}

// assemble turns raw intersection pieces into a valid falls.Set. The
// pieces are pairwise disjoint as byte sets, but their extents may
// interleave, which the set representation (and MAP-AUX lookup)
// forbids; when that happens the pieces are flattened to leaf segments
// and re-compacted.
func assemble(pieces []*falls.Nested) falls.Set {
	if len(pieces) == 0 {
		return nil
	}
	for i, p := range pieces {
		pieces[i] = canonical(p)
	}
	set := falls.SetOf(pieces...)
	if set.Validate() == nil {
		return set
	}
	var segs []falls.LineSegment
	for _, p := range pieces {
		p.Walk(func(seg falls.LineSegment) bool {
			segs = append(segs, seg)
			return true
		})
	}
	sortSegments(segs)
	return falls.LeavesToSet(segs)
}

func sortSegments(segs []falls.LineSegment) {
	sort.Slice(segs, func(i, j int) bool { return segs[i].L < segs[j].L })
}

// canonical simplifies a nested member without changing its byte set:
// a member whose inner set is a single once-repeated child collapses
// into the member itself (the paper writes the Figure 4 projection as
// (0,0,4,2), not (0,1,4,2,{(0,0,1,1)})).
func canonical(n *falls.Nested) *falls.Nested {
	if len(n.Inner) == 0 {
		// A dense run (stride equal to the block length) is one
		// segment; collapsing it keeps segment counts honest.
		if n.N > 1 && n.S == n.BlockLen() {
			return falls.Leaf(falls.FromSegment(falls.LineSegment{L: n.L, R: n.Extent()}))
		}
		return n
	}
	inner := make(falls.Set, len(n.Inner))
	for i, c := range n.Inner {
		inner[i] = canonical(c)
	}
	n = &falls.Nested{FALLS: n.FALLS, Inner: inner}
	if len(inner) == 1 && inner[0].N == 1 {
		child := inner[0]
		merged := &falls.Nested{
			FALLS: falls.FALLS{
				L: n.L + child.L,
				R: n.L + child.R,
				S: n.S,
				N: n.N,
			},
			Inner: child.Inner,
		}
		if merged.Validate() == nil {
			return merged
		}
	}
	// An inner set that densely covers the whole block is redundant.
	if isDense(inner, n.BlockLen()) {
		return falls.Leaf(n.FALLS)
	}
	return n
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func ceilDiv(a, b int64) int64 {
	q := a / b
	if a%b != 0 && (a > 0) == (b > 0) {
		q++
	}
	return q
}

func floorDiv(a, b int64) int64 { return falls.FloorDiv64(a, b) }

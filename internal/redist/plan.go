package redist

import (
	"fmt"
	"sync"

	"parafile/internal/core"
	"parafile/internal/falls"
	"parafile/internal/part"
)

// plan.go turns pairwise element intersections into an executable
// redistribution plan: which source element sends which of its bytes
// to which destination element. A plan is computed once per partition
// pair and reused for any amount of data — the paper's point that the
// intersection overhead "has to be paid only at view setting and can
// be amortized over several accesses" (§8.2).

// copyTriple is one contiguous correspondence within one intersection
// period: n bytes at srcOff in the source element map to dstOff in the
// destination element.
type copyTriple struct {
	srcOff, dstOff int64
	fileOff        int64 // file-space coordinate of the run (period-relative)
	n              int64
}

// Transfer is the precomputed exchange between one source element and
// one destination element.
type Transfer struct {
	SrcElem, DstElem int
	Intersection     *Intersection
	SrcProj, DstProj *Projection

	triples []copyTriple
}

// BytesPerPeriod returns the bytes this transfer moves per
// intersection period.
func (t *Transfer) BytesPerPeriod() int64 { return t.Intersection.BytesPerPeriod() }

// Plan is the full redistribution plan between two partitions of the
// same file.
type Plan struct {
	Src, Dst  *part.File
	Period    int64 // intersection period in file bytes
	Base      int64 // absolute file offset of period coordinate 0
	Transfers []Transfer
}

// NewPlan intersects every source element with every destination
// element and precomputes the per-period copy runs.
func NewPlan(src, dst *part.File) (*Plan, error) {
	if src == nil || dst == nil {
		return nil, fmt.Errorf("redist: nil file")
	}
	plan := &Plan{Src: src, Dst: dst}
	srcMappers := make([]*core.Mapper, src.Pattern.Len())
	dstMappers := make([]*core.Mapper, dst.Pattern.Len())
	for i := range srcMappers {
		m, err := core.NewMapper(src, i)
		if err != nil {
			return nil, err
		}
		srcMappers[i] = m
	}
	for i := range dstMappers {
		m, err := core.NewMapper(dst, i)
		if err != nil {
			return nil, err
		}
		dstMappers[i] = m
	}
	for si := 0; si < src.Pattern.Len(); si++ {
		for di := 0; di < dst.Pattern.Len(); di++ {
			inter, sp, dp, err := IntersectProjectElements(src, si, dst, di)
			if err != nil {
				return nil, err
			}
			if inter.Empty() {
				continue
			}
			plan.Period = inter.Period
			plan.Base = inter.Base
			tr := Transfer{
				SrcElem: si, DstElem: di,
				Intersection: inter, SrcProj: sp, DstProj: dp,
			}
			var walkErr error
			inter.Set.Walk(func(seg falls.LineSegment) bool {
				so, err := srcMappers[si].Map(inter.Base + seg.L)
				if err != nil {
					walkErr = err
					return false
				}
				do, err := dstMappers[di].Map(inter.Base + seg.L)
				if err != nil {
					walkErr = err
					return false
				}
				tr.triples = append(tr.triples, copyTriple{
					srcOff: so, dstOff: do, fileOff: seg.L, n: seg.Len(),
				})
				return true
			})
			if walkErr != nil {
				return nil, walkErr
			}
			plan.Transfers = append(plan.Transfers, tr)
		}
	}
	return plan, nil
}

// BytesPerPeriod returns the total bytes the plan moves per
// intersection period.
func (p *Plan) BytesPerPeriod() int64 {
	var n int64
	for i := range p.Transfers {
		n += p.Transfers[i].BytesPerPeriod()
	}
	return n
}

// SegmentsPerPeriod returns the total number of contiguous runs per
// period — the fragmentation measure of the partition pair.
func (p *Plan) SegmentsPerPeriod() int64 {
	var n int64
	for i := range p.Transfers {
		n += int64(len(p.Transfers[i].triples))
	}
	return n
}

// Execute redistributes the first length bytes of file data (starting
// at the plan's base offset) from the source element buffers into the
// destination element buffers. src[e] holds source element e's linear
// space, dst likewise; buffers must be large enough for the mapped
// range.
func (p *Plan) Execute(src, dst [][]byte, length int64) error {
	return p.execute(src, dst, length, 1)
}

// ExecuteRange redistributes only the file bytes [from, from+length)
// relative to the plan's base — an incremental redistribution for
// partial updates. Buffers still hold the full element linear spaces.
func (p *Plan) ExecuteRange(src, dst [][]byte, from, length int64) error {
	if from < 0 {
		return fmt.Errorf("redist: negative range start %d", from)
	}
	if length < 0 {
		return fmt.Errorf("redist: negative length %d", length)
	}
	if len(src) != p.Src.Pattern.Len() {
		return fmt.Errorf("redist: %d source buffers for %d elements", len(src), p.Src.Pattern.Len())
	}
	if len(dst) != p.Dst.Pattern.Len() {
		return fmt.Errorf("redist: %d destination buffers for %d elements", len(dst), p.Dst.Pattern.Len())
	}
	if length == 0 || len(p.Transfers) == 0 {
		return nil
	}
	to := from + length // exclusive
	for i := range p.Transfers {
		t := &p.Transfers[i]
		sbuf := src[t.SrcElem]
		dbuf := dst[t.DstElem]
		for k := from / p.Period; k*p.Period < to; k++ {
			base := k * p.Period
			for _, tr := range t.triples {
				lo := max64(base+tr.fileOff, from)
				hi := min64(base+tr.fileOff+tr.n, to)
				if lo >= hi {
					continue
				}
				skip := lo - (base + tr.fileOff)
				n := hi - lo
				so := tr.srcOff + k*t.SrcProj.Period + skip
				do := tr.dstOff + k*t.DstProj.Period + skip
				if so+n > int64(len(sbuf)) {
					return fmt.Errorf("redist: source element %d buffer too small: need %d bytes, have %d",
						t.SrcElem, so+n, len(sbuf))
				}
				if do+n > int64(len(dbuf)) {
					return fmt.Errorf("redist: destination element %d buffer too small: need %d bytes, have %d",
						t.DstElem, do+n, len(dbuf))
				}
				copy(dbuf[do:do+n], sbuf[so:so+n])
			}
		}
	}
	return nil
}

// ExecuteParallel is Execute with the transfers spread over the given
// number of worker goroutines. Transfers write disjoint destination
// bytes, so they are safe to run concurrently.
func (p *Plan) ExecuteParallel(src, dst [][]byte, length int64, workers int) error {
	if workers < 1 {
		workers = 1
	}
	return p.execute(src, dst, length, workers)
}

func (p *Plan) execute(src, dst [][]byte, length int64, workers int) error {
	if len(src) != p.Src.Pattern.Len() {
		return fmt.Errorf("redist: %d source buffers for %d elements", len(src), p.Src.Pattern.Len())
	}
	if len(dst) != p.Dst.Pattern.Len() {
		return fmt.Errorf("redist: %d destination buffers for %d elements", len(dst), p.Dst.Pattern.Len())
	}
	if length < 0 {
		return fmt.Errorf("redist: negative length %d", length)
	}
	if length == 0 || len(p.Transfers) == 0 {
		return nil
	}
	if workers > len(p.Transfers) {
		workers = len(p.Transfers)
	}
	if workers == 1 {
		for i := range p.Transfers {
			if err := p.runTransfer(&p.Transfers[i], src, dst, length); err != nil {
				return err
			}
		}
		return nil
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(p.Transfers); i += workers {
				if err := p.runTransfer(&p.Transfers[i], src, dst, length); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (p *Plan) runTransfer(t *Transfer, src, dst [][]byte, length int64) error {
	sbuf := src[t.SrcElem]
	dbuf := dst[t.DstElem]
	srcPeriod := t.SrcProj.Period
	dstPeriod := t.DstProj.Period
	for k := int64(0); k*p.Period < length; k++ {
		for _, tr := range t.triples {
			n := tr.n
			if rem := length - k*p.Period - tr.fileOff; rem < n {
				n = rem
			}
			if n <= 0 {
				continue
			}
			so := tr.srcOff + k*srcPeriod
			do := tr.dstOff + k*dstPeriod
			if so+n > int64(len(sbuf)) {
				return fmt.Errorf("redist: source element %d buffer too small: need %d bytes, have %d",
					t.SrcElem, so+n, len(sbuf))
			}
			if do+n > int64(len(dbuf)) {
				return fmt.Errorf("redist: destination element %d buffer too small: need %d bytes, have %d",
					t.DstElem, do+n, len(dbuf))
			}
			copy(dbuf[do:do+n], sbuf[so:so+n])
		}
	}
	return nil
}

// SplitFile distributes a linear file image (the partitioned region
// starting at the file's displacement) into per-element buffers, the
// physical layout a partition induces. It is the reference
// decomposition the redistribution tests and examples build on.
func SplitFile(f *part.File, data []byte) [][]byte {
	ps := f.Pattern.Size()
	length := int64(len(data))
	out := make([][]byte, f.Pattern.Len())
	for e := range out {
		out[e] = make([]byte, f.ElementBytes(e, length))
		set := f.Pattern.Element(e).Set
		pos := int64(0)
		for rep := int64(0); rep*ps < length; rep++ {
			base := rep * ps
			set.Walk(func(seg falls.LineSegment) bool {
				lo := base + seg.L
				if lo >= length {
					return false
				}
				n := min64(seg.Len(), length-lo)
				copy(out[e][pos:pos+n], data[lo:lo+n])
				pos += n
				return true
			})
		}
	}
	return out
}

// JoinFile reassembles a linear file image of the given length from
// per-element buffers — the inverse of SplitFile.
func JoinFile(f *part.File, elems [][]byte, length int64) ([]byte, error) {
	if len(elems) != f.Pattern.Len() {
		return nil, fmt.Errorf("redist: %d buffers for %d elements", len(elems), f.Pattern.Len())
	}
	ps := f.Pattern.Size()
	data := make([]byte, length)
	for e := range elems {
		set := f.Pattern.Element(e).Set
		pos := int64(0)
		var err error
		for rep := int64(0); rep*ps < length; rep++ {
			base := rep * ps
			set.Walk(func(seg falls.LineSegment) bool {
				lo := base + seg.L
				if lo >= length {
					return false
				}
				n := min64(seg.Len(), length-lo)
				if pos+n > int64(len(elems[e])) {
					err = fmt.Errorf("redist: element %d buffer too small", e)
					return false
				}
				copy(data[lo:lo+n], elems[e][pos:pos+n])
				pos += n
				return true
			})
			if err != nil {
				return nil, err
			}
		}
	}
	return data, nil
}

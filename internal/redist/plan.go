package redist

import (
	"fmt"
	"runtime"
	"sync"
	"time"

	"parafile/internal/core"
	"parafile/internal/falls"
	"parafile/internal/obs"
	"parafile/internal/part"
)

// plan.go turns pairwise element intersections into an executable
// redistribution plan: which source element sends which of its bytes
// to which destination element. A plan is computed once per partition
// pair and reused for any amount of data — the paper's point that the
// intersection overhead "has to be paid only at view setting and can
// be amortized over several accesses" (§8.2).
//
// Compilation is embarrassingly parallel: every (source element,
// destination element) pair's intersection, projections and triple
// walk are independent of every other pair, and the mappers they read
// are immutable after construction. CompilePlan fans the pairs out
// over a worker pool and reassembles the transfers in deterministic
// pair order, so a parallel compile yields a plan identical to the
// sequential one.

// copyTriple is one contiguous correspondence within one intersection
// period: n bytes at srcOff in the source element map to dstOff in the
// destination element.
type copyTriple struct {
	srcOff, dstOff int64
	fileOff        int64 // file-space coordinate of the run (period-relative)
	n              int64
}

// Transfer is the precomputed exchange between one source element and
// one destination element.
type Transfer struct {
	SrcElem, DstElem int
	Intersection     *Intersection
	SrcProj, DstProj *Projection

	triples []copyTriple
}

// BytesPerPeriod returns the bytes this transfer moves per
// intersection period.
func (t *Transfer) BytesPerPeriod() int64 { return t.Intersection.BytesPerPeriod() }

// Plan is the full redistribution plan between two partitions of the
// same file.
type Plan struct {
	Src, Dst  *part.File
	Period    int64 // intersection period in file bytes
	Base      int64 // absolute file offset of period coordinate 0
	Transfers []Transfer
	// Coalesced records whether the run-coalescing pass was applied
	// during compilation.
	Coalesced bool
}

// String summarizes the plan for logs and traces: transfer and run
// counts, bytes per period, the intersection geometry and the
// coalesce state.
func (p *Plan) String() string {
	if p == nil {
		return "redist.Plan(nil)"
	}
	co := "coalesced"
	if !p.Coalesced {
		co = "uncoalesced"
	}
	return fmt.Sprintf("redist.Plan{%d transfers, %d runs/period, %d B/period, period %d, base %d, %s}",
		len(p.Transfers), p.SegmentsPerPeriod(), p.BytesPerPeriod(), p.Period, p.Base, co)
}

// GoString is the %#v form: String plus the partition shapes.
func (p *Plan) GoString() string {
	if p == nil {
		return "redist.Plan(nil)"
	}
	return fmt.Sprintf("redist.Plan{src: %d elems/size %d/disp %d, dst: %d elems/size %d/disp %d, period: %d, base: %d, transfers: %d, runs/period: %d, bytes/period: %d, coalesced: %t}",
		p.Src.Pattern.Len(), p.Src.Pattern.Size(), p.Src.Displacement,
		p.Dst.Pattern.Len(), p.Dst.Pattern.Size(), p.Dst.Displacement,
		p.Period, p.Base, len(p.Transfers), p.SegmentsPerPeriod(), p.BytesPerPeriod(), p.Coalesced)
}

// CompileOptions tunes plan compilation. The zero value selects the
// defaults: one worker per GOMAXPROCS and run coalescing enabled.
type CompileOptions struct {
	// Workers is the number of goroutines compiling element pairs
	// concurrently; zero or negative selects runtime.GOMAXPROCS(0).
	Workers int
	// NoCoalesce disables the triple-coalescing pass that merges
	// adjacent copy runs contiguous in source, destination and file
	// space. Coalesced and uncoalesced plans move byte-identical data;
	// the switch exists for ablation measurements.
	NoCoalesce bool
	// Metrics, when non-nil, receives the compile-time series of
	// metrics.go (latency histogram, pair and segment counters).
	Metrics *obs.Registry
	// Trace, when non-nil, is the parent wall-clock span; CompilePlan
	// opens a "redist.compile" child with per-phase grandchildren.
	Trace *obs.Span
}

// NewPlan intersects every source element with every destination
// element and precomputes the per-period copy runs, compiling the
// pairs in parallel over GOMAXPROCS workers.
func NewPlan(src, dst *part.File) (*Plan, error) {
	return CompilePlan(src, dst, CompileOptions{})
}

// NewPlanParallel is NewPlan with an explicit worker count for the
// pairwise compilation loop.
func NewPlanParallel(src, dst *part.File, workers int) (*Plan, error) {
	return CompilePlan(src, dst, CompileOptions{Workers: workers})
}

// pairResult is the output of compiling one (source element,
// destination element) pair.
type pairResult struct {
	tr    Transfer
	inter *Intersection
	err   error
}

// CompilePlan builds the redistribution plan under explicit options.
// The plan is independent of the worker count: transfers appear in
// (source element, destination element) order regardless of which
// worker compiled them.
func CompilePlan(src, dst *part.File, opts CompileOptions) (*Plan, error) {
	if src == nil || dst == nil {
		return nil, fmt.Errorf("redist: nil file")
	}
	start := time.Now()
	span := opts.Trace.StartChild("redist.compile")
	defer span.End()
	mapperSpan := span.StartChild("mappers")
	srcMappers := make([]*core.Mapper, src.Pattern.Len())
	dstMappers := make([]*core.Mapper, dst.Pattern.Len())
	for i := range srcMappers {
		m, err := core.NewMapper(src, i)
		if err != nil {
			return nil, err
		}
		srcMappers[i] = m
	}
	for i := range dstMappers {
		m, err := core.NewMapper(dst, i)
		if err != nil {
			return nil, err
		}
		dstMappers[i] = m
	}
	mapperSpan.End()
	// The intersection geometry is the same for every pair: period is
	// the lcm of the two pattern sizes, base the larger displacement
	// (§7 PREPROCESS). Each pair's intersection re-derives it; the
	// assembly below cross-checks them.
	plan := &Plan{
		Src: src, Dst: dst,
		Period:    falls.Lcm64(src.Pattern.Size(), dst.Pattern.Size()),
		Base:      max64(src.Displacement, dst.Displacement),
		Coalesced: !opts.NoCoalesce,
	}

	nd := dst.Pattern.Len()
	pairs := src.Pattern.Len() * nd
	results := make([]pairResult, pairs)
	// compilePair runs the full per-pair pipeline: intersection,
	// projections, and the triple walk through the (immutable, hence
	// concurrency-safe) mappers.
	compilePair := func(pi int) {
		si, di := pi/nd, pi%nd
		res := &results[pi]
		inter, sp, dp, err := IntersectProjectElements(src, si, dst, di)
		if err != nil {
			res.err = err
			return
		}
		res.inter = inter
		if inter.Empty() {
			return
		}
		res.tr = Transfer{
			SrcElem: si, DstElem: di,
			Intersection: inter, SrcProj: sp, DstProj: dp,
		}
		inter.Set.Walk(func(seg falls.LineSegment) bool {
			so, err := srcMappers[si].Map(inter.Base + seg.L)
			if err != nil {
				res.err = err
				return false
			}
			do, err := dstMappers[di].Map(inter.Base + seg.L)
			if err != nil {
				res.err = err
				return false
			}
			res.tr.triples = append(res.tr.triples, copyTriple{
				srcOff: so, dstOff: do, fileOff: seg.L, n: seg.Len(),
			})
			return true
		})
	}

	workers := opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > pairs {
		workers = pairs
	}
	pairSpan := span.StartChild("pairs")
	if workers <= 1 {
		for pi := 0; pi < pairs; pi++ {
			compilePair(pi)
		}
	} else {
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for pi := w; pi < pairs; pi += workers {
					compilePair(pi)
				}
			}(w)
		}
		wg.Wait()
	}
	pairSpan.End()

	// Deterministic assembly, with the geometry cross-check: every
	// non-empty intersection must report the analytic period and base.
	// (The pre-fix code let each pair overwrite Plan.Period/Base, so a
	// disagreeing pair would have been silently kept.)
	assembleSpan := span.StartChild("assemble")
	var rawSegments, segments, nonEmpty int64
	for pi := range results {
		res := &results[pi]
		if res.err != nil {
			return nil, res.err
		}
		if res.inter == nil || res.inter.Empty() {
			continue
		}
		if res.inter.Period != plan.Period || res.inter.Base != plan.Base {
			return nil, fmt.Errorf(
				"redist: inconsistent intersection geometry for pair (%d,%d): period %d base %d, want period %d base %d",
				res.tr.SrcElem, res.tr.DstElem, res.inter.Period, res.inter.Base, plan.Period, plan.Base)
		}
		nonEmpty++
		rawSegments += int64(len(res.tr.triples))
		if !opts.NoCoalesce {
			res.tr.triples = coalesceTriples(res.tr.triples)
		}
		segments += int64(len(res.tr.triples))
		plan.Transfers = append(plan.Transfers, res.tr)
	}
	assembleSpan.End()

	if m := opts.Metrics; m != nil {
		mode := m.Counter(MetricCompilesSeq)
		if workers > 1 {
			mode = m.Counter(MetricCompilesPar)
		}
		mode.Inc()
		m.Counter(MetricPairs).Add(int64(pairs))
		m.Counter(MetricPairsNonEmpty).Add(nonEmpty)
		m.Counter(MetricSegmentsRaw).Add(rawSegments)
		m.Counter(MetricSegments).Add(segments)
		m.Histogram(MetricCompileNs, obs.LatencyBuckets()).
			Observe(time.Since(start).Nanoseconds())
	}
	return plan, nil
}

// coalesceTriples merges adjacent copy runs whose source, destination
// and file offsets are all contiguous into maximal runs. Triples
// arrive in ascending file order from the intersection walk, so a
// single forward pass suffices. Merging is exact: the merged run
// copies the same bytes between the same offsets, and the file-offset
// arithmetic of ExecuteRange/Windows still holds because the file
// span of the merged run equals its length.
func coalesceTriples(ts []copyTriple) []copyTriple {
	if len(ts) < 2 {
		return ts
	}
	out := ts[:1]
	for _, tr := range ts[1:] {
		last := &out[len(out)-1]
		if last.fileOff+last.n == tr.fileOff &&
			last.srcOff+last.n == tr.srcOff &&
			last.dstOff+last.n == tr.dstOff {
			last.n += tr.n
			continue
		}
		out = append(out, tr)
	}
	return out
}

// BytesPerPeriod returns the total bytes the plan moves per
// intersection period.
func (p *Plan) BytesPerPeriod() int64 {
	var n int64
	for i := range p.Transfers {
		n += p.Transfers[i].BytesPerPeriod()
	}
	return n
}

// SegmentsPerPeriod returns the total number of contiguous runs per
// period — the fragmentation measure of the partition pair.
func (p *Plan) SegmentsPerPeriod() int64 {
	var n int64
	for i := range p.Transfers {
		n += int64(len(p.Transfers[i].triples))
	}
	return n
}

// Execute redistributes the first length bytes of file data (starting
// at the plan's base offset) from the source element buffers into the
// destination element buffers. src[e] holds source element e's linear
// space, dst likewise; buffers must be large enough for the mapped
// range.
func (p *Plan) Execute(src, dst [][]byte, length int64) error {
	return p.execute(src, dst, length, 1)
}

// ExecuteRange redistributes only the file bytes [from, from+length)
// relative to the plan's base — an incremental redistribution for
// partial updates. Buffers still hold the full element linear spaces.
func (p *Plan) ExecuteRange(src, dst [][]byte, from, length int64) error {
	if from < 0 {
		return fmt.Errorf("redist: negative range start %d", from)
	}
	if length < 0 {
		return fmt.Errorf("redist: negative length %d", length)
	}
	if len(src) != p.Src.Pattern.Len() {
		return fmt.Errorf("redist: %d source buffers for %d elements", len(src), p.Src.Pattern.Len())
	}
	if len(dst) != p.Dst.Pattern.Len() {
		return fmt.Errorf("redist: %d destination buffers for %d elements", len(dst), p.Dst.Pattern.Len())
	}
	if length == 0 || len(p.Transfers) == 0 {
		return nil
	}
	to := from + length // exclusive
	for i := range p.Transfers {
		t := &p.Transfers[i]
		sbuf := src[t.SrcElem]
		dbuf := dst[t.DstElem]
		for k := from / p.Period; k*p.Period < to; k++ {
			base := k * p.Period
			for _, tr := range t.triples {
				lo := max64(base+tr.fileOff, from)
				hi := min64(base+tr.fileOff+tr.n, to)
				if lo >= hi {
					continue
				}
				skip := lo - (base + tr.fileOff)
				n := hi - lo
				so := tr.srcOff + k*t.SrcProj.Period + skip
				do := tr.dstOff + k*t.DstProj.Period + skip
				if so+n > int64(len(sbuf)) {
					return fmt.Errorf("redist: source element %d buffer too small: need %d bytes, have %d",
						t.SrcElem, so+n, len(sbuf))
				}
				if do+n > int64(len(dbuf)) {
					return fmt.Errorf("redist: destination element %d buffer too small: need %d bytes, have %d",
						t.DstElem, do+n, len(dbuf))
				}
				copy(dbuf[do:do+n], sbuf[so:so+n])
			}
		}
	}
	return nil
}

// ExecuteParallel is Execute with the transfers spread over the given
// number of worker goroutines. Transfers write disjoint destination
// bytes, so they are safe to run concurrently.
func (p *Plan) ExecuteParallel(src, dst [][]byte, length int64, workers int) error {
	if workers < 1 {
		workers = 1
	}
	return p.execute(src, dst, length, workers)
}

func (p *Plan) execute(src, dst [][]byte, length int64, workers int) error {
	if len(src) != p.Src.Pattern.Len() {
		return fmt.Errorf("redist: %d source buffers for %d elements", len(src), p.Src.Pattern.Len())
	}
	if len(dst) != p.Dst.Pattern.Len() {
		return fmt.Errorf("redist: %d destination buffers for %d elements", len(dst), p.Dst.Pattern.Len())
	}
	if length < 0 {
		return fmt.Errorf("redist: negative length %d", length)
	}
	if length == 0 || len(p.Transfers) == 0 {
		return nil
	}
	if workers > len(p.Transfers) {
		workers = len(p.Transfers)
	}
	if workers == 1 {
		for i := range p.Transfers {
			if err := p.runTransfer(&p.Transfers[i], src, dst, length); err != nil {
				return err
			}
		}
		return nil
	}
	var wg sync.WaitGroup
	errs := make([]error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < len(p.Transfers); i += workers {
				if err := p.runTransfer(&p.Transfers[i], src, dst, length); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

func (p *Plan) runTransfer(t *Transfer, src, dst [][]byte, length int64) error {
	sbuf := src[t.SrcElem]
	dbuf := dst[t.DstElem]
	srcPeriod := t.SrcProj.Period
	dstPeriod := t.DstProj.Period
	for k := int64(0); k*p.Period < length; k++ {
		for _, tr := range t.triples {
			n := tr.n
			if rem := length - k*p.Period - tr.fileOff; rem < n {
				n = rem
			}
			if n <= 0 {
				continue
			}
			so := tr.srcOff + k*srcPeriod
			do := tr.dstOff + k*dstPeriod
			if so+n > int64(len(sbuf)) {
				return fmt.Errorf("redist: source element %d buffer too small: need %d bytes, have %d",
					t.SrcElem, so+n, len(sbuf))
			}
			if do+n > int64(len(dbuf)) {
				return fmt.Errorf("redist: destination element %d buffer too small: need %d bytes, have %d",
					t.DstElem, do+n, len(dbuf))
			}
			copy(dbuf[do:do+n], sbuf[so:so+n])
		}
	}
	return nil
}

// SplitFile distributes a linear file image (the partitioned region
// starting at the file's displacement) into per-element buffers, the
// physical layout a partition induces. It is the reference
// decomposition the redistribution tests and examples build on.
func SplitFile(f *part.File, data []byte) [][]byte {
	ps := f.Pattern.Size()
	length := int64(len(data))
	out := make([][]byte, f.Pattern.Len())
	for e := range out {
		out[e] = make([]byte, f.ElementBytes(e, length))
		set := f.Pattern.Element(e).Set
		pos := int64(0)
		for rep := int64(0); rep*ps < length; rep++ {
			base := rep * ps
			set.Walk(func(seg falls.LineSegment) bool {
				lo := base + seg.L
				if lo >= length {
					return false
				}
				n := min64(seg.Len(), length-lo)
				copy(out[e][pos:pos+n], data[lo:lo+n])
				pos += n
				return true
			})
		}
	}
	return out
}

// JoinFile reassembles a linear file image of the given length from
// per-element buffers — the inverse of SplitFile.
func JoinFile(f *part.File, elems [][]byte, length int64) ([]byte, error) {
	if len(elems) != f.Pattern.Len() {
		return nil, fmt.Errorf("redist: %d buffers for %d elements", len(elems), f.Pattern.Len())
	}
	ps := f.Pattern.Size()
	data := make([]byte, length)
	for e := range elems {
		set := f.Pattern.Element(e).Set
		pos := int64(0)
		var err error
		for rep := int64(0); rep*ps < length; rep++ {
			base := rep * ps
			set.Walk(func(seg falls.LineSegment) bool {
				lo := base + seg.L
				if lo >= length {
					return false
				}
				n := min64(seg.Len(), length-lo)
				if pos+n > int64(len(elems[e])) {
					err = fmt.Errorf("redist: element %d buffer too small", e)
					return false
				}
				copy(data[lo:lo+n], elems[e][pos:pos+n])
				pos += n
				return true
			})
			if err != nil {
				return nil, err
			}
		}
	}
	return data, nil
}

package redist

import (
	"math/rand"
	"testing"

	"parafile/internal/core"
	"parafile/internal/falls"
	"parafile/internal/part"
)

// checkTriAgainstWalk verifies IntersectProjectElements against the
// independently computed segment-walk projections.
func checkTriAgainstWalk(t *testing.T, f1 *part.File, e1 int, f2 *part.File, e2 int) {
	t.Helper()
	inter, p1, p2, err := IntersectProjectElements(f1, e1, f2, e2)
	if err != nil {
		t.Fatal(err)
	}
	wantInter, err := IntersectElements(f1, e1, f2, e2)
	if err != nil {
		t.Fatal(err)
	}
	if !falls.OffsetsEqual(inter.Set, wantInter.Set) {
		t.Fatalf("intersection differs:\nfast=%v\nwalk=%v", inter.Set, wantInter.Set)
	}
	if inter.Period != wantInter.Period || inter.Base != wantInter.Base {
		t.Fatalf("period/base differ: %d/%d vs %d/%d",
			inter.Period, inter.Base, wantInter.Period, wantInter.Base)
	}
	w1, err := Project(wantInter, core.MustMapper(f1, e1))
	if err != nil {
		t.Fatal(err)
	}
	w2, err := Project(wantInter, core.MustMapper(f2, e2))
	if err != nil {
		t.Fatal(err)
	}
	if !falls.OffsetsEqual(p1.Set, w1.Set) {
		t.Fatalf("projection 1 differs:\nfast=%v\nwalk=%v", p1.Set, w1.Set)
	}
	if !falls.OffsetsEqual(p2.Set, w2.Set) {
		t.Fatalf("projection 2 differs:\nfast=%v\nwalk=%v", p2.Set, w2.Set)
	}
	if p1.Period != w1.Period || p2.Period != w2.Period {
		t.Fatalf("projection periods differ: %d/%d vs %d/%d", p1.Period, p2.Period, w1.Period, w2.Period)
	}
	if err := p1.Set.Validate(); err != nil {
		t.Fatalf("fast projection 1 invalid: %v", err)
	}
	if err := p2.Set.Validate(); err != nil {
		t.Fatalf("fast projection 2 invalid: %v", err)
	}
}

// TestStructuralProjectionMatrixLayouts: every pair of the paper's
// layouts, every element pair, against the walk oracle.
func TestStructuralProjectionMatrixLayouts(t *testing.T) {
	rows, _ := part.RowBlocks(16, 16, 4)
	cols, _ := part.ColBlocks(16, 16, 4)
	sq, _ := part.SquareBlocks(16, 16, 2, 2)
	pats := []*part.Pattern{rows, cols, sq}
	for _, a := range pats {
		for _, b := range pats {
			f1 := part.MustFile(0, a)
			f2 := part.MustFile(0, b)
			for e1 := 0; e1 < a.Len(); e1++ {
				for e2 := 0; e2 < b.Len(); e2++ {
					checkTriAgainstWalk(t, f1, e1, f2, e2)
				}
			}
		}
	}
}

// TestStructuralProjectionFigure4: the worked example goes through the
// fast path and produces the published projections.
func TestStructuralProjectionFigure4(t *testing.T) {
	fv := fileAround(t, fig4V(), 32, 0)
	fs := fileAround(t, fig4S(), 32, 0)
	_, p1, p2, err := IntersectProjectElements(fv, 0, fs, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 4}
	for name, p := range map[string]*Projection{"PROJ_V": p1, "PROJ_S": p2} {
		got := p.Set.Offsets()
		if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
			t.Errorf("%s = %v, want %v", name, got, want)
		}
	}
}

// TestStructuralProjectionRandom: random partitions — most exercise
// the fallback path — always agree with the walk.
func TestStructuralProjectionRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(120))
	for iter := 0; iter < 120; iter++ {
		z1 := int64(8 * (1 + rng.Intn(6)))
		z2 := int64(8 * (1 + rng.Intn(6)))
		f1 := fileAround(t, randSetIn(rng, z1), z1, rng.Int63n(4))
		f2 := fileAround(t, randSetIn(rng, z2), z2, rng.Int63n(4))
		checkTriAgainstWalk(t, f1, 0, f2, 0)
	}
}

// TestStructuralProjectionDisplacements: phase-shifted patterns.
func TestStructuralProjectionDisplacements(t *testing.T) {
	s1, _ := part.Stripe(4, 2)
	s2, _ := part.Stripe(2, 2)
	f1 := part.MustFile(0, s1)
	f2 := part.MustFile(6, s2)
	for e1 := 0; e1 < 2; e1++ {
		for e2 := 0; e2 < 2; e2++ {
			checkTriAgainstWalk(t, f1, e1, f2, e2)
		}
	}
}

// TestStructuralProjectionCompactness: the fast path keeps work
// independent of matrix size — representation sizes stay O(1) for the
// row×column pair.
func TestStructuralProjectionCompactness(t *testing.T) {
	for _, n := range []int64{256, 2048} {
		rows, _ := part.RowBlocks(n, n, 4)
		cols, _ := part.ColBlocks(n, n, 4)
		inter, p1, p2, err := IntersectProjectElements(
			part.MustFile(0, rows), 0, part.MustFile(0, cols), 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(inter.Set) > 3 || len(p1.Set) > 3 || len(p2.Set) > 3 {
			t.Errorf("n=%d: representations not compact: inter=%d p1=%d p2=%d members",
				n, len(inter.Set), len(p1.Set), len(p2.Set))
		}
		if p1.Bytes != n*n/16 || p2.Bytes != n*n/16 {
			t.Errorf("n=%d: projected bytes %d/%d, want %d", n, p1.Bytes, p2.Bytes, n*n/16)
		}
	}
}

// TestCountBelowNestedOracle: the arithmetic byte counter agrees with
// enumeration on random nested members.
func TestCountBelowNestedOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(121))
	for iter := 0; iter < 200; iter++ {
		s := randSetIn(rng, 128)
		offs := s.Offsets()
		for x := int64(-4); x < 140; x++ {
			var want int64
			for _, o := range offs {
				if o < x {
					want++
				}
			}
			if got := countBelowSet(s, x); got != want {
				t.Fatalf("set %v: countBelowSet(%d) = %d, want %d", s, x, got, want)
			}
		}
	}
}

package redist

import (
	"fmt"

	"parafile/internal/falls"
)

// exec_messaged.go executes a redistribution the way distributed nodes
// would: per communication pair, the source gathers its shared bytes
// into a message buffer, the "network" hands the buffer over, and the
// destination scatters it — §8's GATHER/SEND/SCATTER pipeline as a
// library-level executor. It is the reference implementation for
// wire-format behaviour; Plan.Execute is the fused fast path.

// MessageHandler observes each message of a messaged execution (for
// instrumentation or actual transport). buf is the gathered payload;
// handlers must not retain it.
type MessageHandler func(m Message, buf []byte)

// ExecuteMessaged redistributes length bytes from src element buffers
// to dst element buffers through explicit gather/scatter messages.
// onMessage may be nil.
func (p *Plan) ExecuteMessaged(src, dst [][]byte, length int64, onMessage MessageHandler) error {
	if len(src) != p.Src.Pattern.Len() {
		return fmt.Errorf("redist: %d source buffers for %d elements", len(src), p.Src.Pattern.Len())
	}
	if len(dst) != p.Dst.Pattern.Len() {
		return fmt.Errorf("redist: %d destination buffers for %d elements", len(dst), p.Dst.Pattern.Len())
	}
	if length < 0 {
		return fmt.Errorf("redist: negative length %d", length)
	}
	if length == 0 {
		return nil
	}
	for i := range p.Transfers {
		t := &p.Transfers[i]
		// Element-space windows covered by this length.
		srcHi, dstHi, bytes := t.Windows(p.Period, length)
		if bytes == 0 {
			continue
		}
		buf := make([]byte, bytes)
		n, err := gatherBuf(buf, src[t.SrcElem], t.SrcProj, srcHi)
		if err != nil {
			return fmt.Errorf("redist: transfer %d->%d gather: %w", t.SrcElem, t.DstElem, err)
		}
		if n != bytes {
			return fmt.Errorf("redist: transfer %d->%d gathered %d bytes, want %d",
				t.SrcElem, t.DstElem, n, bytes)
		}
		if onMessage != nil {
			onMessage(Message{From: t.SrcElem, To: t.DstElem, Bytes: bytes, Runs: int64(len(t.triples))}, buf)
		}
		n, err = scatterBuf(dst[t.DstElem], buf, t.DstProj, dstHi)
		if err != nil {
			return fmt.Errorf("redist: transfer %d->%d scatter: %w", t.SrcElem, t.DstElem, err)
		}
		if n != bytes {
			return fmt.Errorf("redist: transfer %d->%d scattered %d bytes, want %d",
				t.SrcElem, t.DstElem, n, bytes)
		}
	}
	return nil
}

// Windows computes, for the first `length` file bytes, the inclusive
// upper bounds of the transfer's element-space windows and the bytes
// moved. The lower bounds are the first selected offsets themselves.
// Consumers that move transfer payloads themselves (e.g. the simulated
// cluster's disk-to-disk redistribution) pair it with the projections.
func (t *Transfer) Windows(period, length int64) (srcHi, dstHi, bytes int64) {
	srcHi, dstHi = -1, -1
	for k := int64(0); k*period < length; k++ {
		for _, tr := range t.triples {
			n := tr.n
			if rem := length - k*period - tr.fileOff; rem < n {
				n = rem
			}
			if n <= 0 {
				continue
			}
			if hi := tr.srcOff + k*t.SrcProj.Period + n - 1; hi > srcHi {
				srcHi = hi
			}
			if hi := tr.dstOff + k*t.DstProj.Period + n - 1; hi > dstHi {
				dstHi = hi
			}
			bytes += n
		}
	}
	return srcHi, dstHi, bytes
}

// gatherBuf packs the projection's bytes in [first selected, hi].
func gatherBuf(buf, src []byte, proj *Projection, hi int64) (int64, error) {
	var pos int64
	var err error
	proj.WalkRange(0, hi, func(seg falls.LineSegment) bool {
		if seg.R >= int64(len(src)) {
			err = fmt.Errorf("source too small: need offset %d, have %d", seg.R, len(src))
			return false
		}
		if pos+seg.Len() > int64(len(buf)) {
			err = fmt.Errorf("message too small")
			return false
		}
		copy(buf[pos:pos+seg.Len()], src[seg.L:seg.R+1])
		pos += seg.Len()
		return true
	})
	return pos, err
}

// scatterBuf unpacks the message into the projection's bytes.
func scatterBuf(dst, buf []byte, proj *Projection, hi int64) (int64, error) {
	var pos int64
	var err error
	proj.WalkRange(0, hi, func(seg falls.LineSegment) bool {
		if pos+seg.Len() > int64(len(buf)) {
			err = fmt.Errorf("message underflow")
			return false
		}
		if seg.R >= int64(len(dst)) {
			err = fmt.Errorf("destination too small: need offset %d, have %d", seg.R, len(dst))
			return false
		}
		copy(dst[seg.L:seg.R+1], buf[pos:pos+seg.Len()])
		pos += seg.Len()
		return true
	})
	return pos, err
}

package redist

import (
	"bytes"
	"sync"
	"testing"

	"parafile/internal/part"
)

// TestConcurrentCompileExecuteCache drives the three concurrent
// entry points at once — parallel plan compilation, parallel
// execution of a shared plan, and plan-cache lookups — so `go test
// -race` can observe any unsynchronized access. Plans and mappers are
// immutable after compilation, so all sharing here must be clean.
func TestConcurrentCompileExecuteCache(t *testing.T) {
	rows, _ := part.RowBlocks(8, 8, 4)
	cols, _ := part.ColBlocks(8, 8, 4)
	src, dst := part.MustFile(0, rows), part.MustFile(0, cols)
	const length = 64

	img := image(length, 3)
	srcBufs := SplitFile(src, img)
	want := SplitFile(dst, img)

	shared, err := NewPlan(src, dst)
	if err != nil {
		t.Fatal(err)
	}
	cache := NewPlanCache(4, CompileOptions{Workers: 2})

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				switch g % 4 {
				case 0: // compile with the worker pool
					if _, err := NewPlanParallel(src, dst, 4); err != nil {
						errs <- err
						return
					}
				case 1: // execute the shared plan in parallel
					got := make([][]byte, len(want))
					for e := range want {
						got[e] = make([]byte, len(want[e]))
					}
					if err := shared.ExecuteParallel(srcBufs, got, length, 4); err != nil {
						errs <- err
						return
					}
					for e := range want {
						if !bytes.Equal(got[e], want[e]) {
							t.Errorf("goroutine %d: element %d differs", g, e)
							return
						}
					}
				case 2: // hammer the cache (miss, hit, invalidate)
					p, _, err := cache.GetOrCompile(src, dst)
					if err != nil {
						errs <- err
						return
					}
					if p.Period != shared.Period {
						t.Errorf("goroutine %d: cached plan period %d, want %d", g, p.Period, shared.Period)
						return
					}
					if i%7 == 0 {
						cache.Invalidate(src, dst)
					}
				case 3: // execute a cache-obtained plan
					p, _, err := cache.GetOrCompile(src, dst)
					if err != nil {
						errs <- err
						return
					}
					got := make([][]byte, len(want))
					for e := range want {
						got[e] = make([]byte, len(want[e]))
					}
					if err := p.Execute(srcBufs, got, length); err != nil {
						errs <- err
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

package redist

import (
	"testing"

	"parafile/internal/part"
)

// TestIntersectionCompactness: after representation harmonization the
// row-view × column-subfile intersection is O(1) members regardless of
// matrix size — the property behind the paper's size-independent t_i.
func TestIntersectionCompactness(t *testing.T) {
	for _, n := range []int64{256, 1024, 2048} {
		rows, err := part.RowBlocks(n, n, 4)
		if err != nil {
			t.Fatal(err)
		}
		cols, err := part.ColBlocks(n, n, 4)
		if err != nil {
			t.Fatal(err)
		}
		inter, err := IntersectElements(part.MustFile(0, rows), 0, part.MustFile(0, cols), 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(inter.Set) > 3 {
			t.Errorf("n=%d: intersection has %d members, want O(1): %v", n, len(inter.Set), inter.Set)
		}
		if got := inter.BytesPerPeriod(); got != n*n/16 {
			t.Errorf("n=%d: %d bytes per period, want %d", n, got, n*n/16)
		}
		sq, err := part.SquareBlocks(n, n, 2, 2)
		if err != nil {
			t.Fatal(err)
		}
		interSq, err := IntersectElements(part.MustFile(0, rows), 0, part.MustFile(0, sq), 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(interSq.Set) > 3 {
			t.Errorf("n=%d rows×square: %d members, want O(1): %v", n, len(interSq.Set), interSq.Set)
		}
	}
}

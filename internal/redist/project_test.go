package redist

import (
	"math/rand"
	"sort"
	"testing"

	"parafile/internal/core"
	"parafile/internal/falls"
	"parafile/internal/part"
)

// TestFigure4Projections reproduces §7's projection example:
// PROJ_V(V∩S) = (0,0,4,2) and PROJ_S(V∩S) = (0,0,4,2) — element
// offsets {0, 4} on both sides.
func TestFigure4Projections(t *testing.T) {
	fv := fileAround(t, fig4V(), 32, 0)
	fs := fileAround(t, fig4S(), 32, 0)
	inter, err := IntersectElements(fv, 0, fs, 0)
	if err != nil {
		t.Fatal(err)
	}
	mv := core.MustMapper(fv, 0)
	ms := core.MustMapper(fs, 0)
	pv, err := Project(inter, mv)
	if err != nil {
		t.Fatal(err)
	}
	ps, err := Project(inter, ms)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{0, 4}
	for name, p := range map[string]*Projection{"PROJ_V": pv, "PROJ_S": ps} {
		got := p.Set.Offsets()
		if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
			t.Errorf("%s offsets = %v, want %v", name, got, want)
		}
		if len(p.Set) != 1 {
			t.Errorf("%s not compact: %v", name, p.Set)
		}
		if p.Bytes != 2 {
			t.Errorf("%s bytes = %d, want 2", name, p.Bytes)
		}
	}
	// V and S have 8 bytes per 32-byte pattern, so one intersection
	// period spans 8 element bytes on each side.
	if pv.Period != 8 || ps.Period != 8 {
		t.Errorf("projection periods = %d, %d; want 8, 8", pv.Period, ps.Period)
	}
}

// TestPropertyProjectionOracle: the projection equals the sorted MAP
// values of the intersection bytes, on random partition pairs.
func TestPropertyProjectionOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	for iter := 0; iter < 120; iter++ {
		z1 := int64(8 * (1 + rng.Intn(6)))
		z2 := int64(8 * (1 + rng.Intn(6)))
		f1 := fileAround(t, randSetIn(rng, z1), z1, rng.Int63n(4))
		f2 := fileAround(t, randSetIn(rng, z2), z2, rng.Int63n(4))
		inter, err := IntersectElements(f1, 0, f2, 0)
		if err != nil {
			t.Fatal(err)
		}
		for _, side := range []*part.File{f1, f2} {
			m := core.MustMapper(side, 0)
			proj, err := Project(inter, m)
			if err != nil {
				t.Fatal(err)
			}
			// The projection is the one-period representation in the
			// element's true phase: the mapped offsets of one
			// intersection period, reduced modulo the projection
			// period.
			var want []int64
			for _, o := range inter.Set.Offsets() {
				v, err := m.Map(inter.Base + o)
				if err != nil {
					t.Fatalf("mapping intersection byte %d: %v", o, err)
				}
				want = append(want, falls.Mod64(v, proj.Period))
			}
			sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
			got := proj.Set.Offsets()
			if len(got) != len(want) {
				t.Fatalf("projection = %v, want %v", got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("projection = %v, want %v", got, want)
				}
			}
		}
	}
}

// TestProjectionPeriodicWalk: WalkRange repeats the projection pattern
// across periods and clips at the window.
func TestProjectionPeriodicWalk(t *testing.T) {
	fv := fileAround(t, fig4V(), 32, 0)
	fs := fileAround(t, fig4S(), 32, 0)
	inter, _ := IntersectElements(fv, 0, fs, 0)
	pv, err := Project(inter, core.MustMapper(fv, 0))
	if err != nil {
		t.Fatal(err)
	}
	// One period selects {0,4} of every 8 element bytes; three periods
	// select {0,4,8,12,16,20}.
	var got []int64
	pv.WalkRange(0, 23, func(seg falls.LineSegment) bool {
		for x := seg.L; x <= seg.R; x++ {
			got = append(got, x)
		}
		return true
	})
	want := []int64{0, 4, 8, 12, 16, 20}
	if len(got) != len(want) {
		t.Fatalf("periodic walk = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("periodic walk = %v, want %v", got, want)
		}
	}
	// Clipped window.
	if n := pv.BytesIn(4, 12); n != 3 { // bytes 4, 8, 12
		t.Errorf("BytesIn(4,12) = %d, want 3", n)
	}
	if n := pv.SegmentsIn(0, 23); n != 6 {
		t.Errorf("SegmentsIn = %d, want 6", n)
	}
}

// TestProjectionContiguity: identical partitions project each element
// onto itself contiguously; mismatched ones do not.
func TestProjectionContiguity(t *testing.T) {
	rows, _ := part.RowBlocks(8, 8, 4)
	cols, _ := part.ColBlocks(8, 8, 4)
	fr := part.MustFile(0, rows)
	fr2 := part.MustFile(0, rows)
	fc := part.MustFile(0, cols)

	// Perfect match: element 1 of rows vs element 1 of rows.
	inter, _ := IntersectElements(fr, 1, fr2, 1)
	proj, err := Project(inter, core.MustMapper(fr, 1))
	if err != nil {
		t.Fatal(err)
	}
	if !proj.IsContiguous(0, 15) {
		t.Error("perfect-match projection should be contiguous over the whole element")
	}

	// Poor match: rows element 1 vs columns element 0 — fragments.
	inter, _ = IntersectElements(fr, 1, fc, 0)
	proj, err = Project(inter, core.MustMapper(fr, 1))
	if err != nil {
		t.Fatal(err)
	}
	if proj.IsContiguous(0, 15) {
		t.Error("row/column projection should be fragmented")
	}
	if got := proj.SegmentsIn(0, 15); got != 2 {
		t.Errorf("row view ∩ column subfile: %d segments per element, want 2 (one per row)", got)
	}
}

func TestProjectionEmptyIntersection(t *testing.T) {
	rows, _ := part.RowBlocks(8, 8, 4)
	f1 := part.MustFile(0, rows)
	f2 := part.MustFile(0, rows)
	inter, _ := IntersectElements(f1, 0, f2, 3)
	proj, err := Project(inter, core.MustMapper(f1, 0))
	if err != nil {
		t.Fatal(err)
	}
	if !proj.Empty() {
		t.Error("projection of empty intersection should be empty")
	}
	if proj.BytesIn(0, 100) != 0 {
		t.Error("empty projection selects bytes")
	}
	if !proj.IsContiguous(5, 4) {
		t.Error("empty window should count as contiguous")
	}
}

func TestProjectValidation(t *testing.T) {
	fv := fileAround(t, fig4V(), 32, 0)
	if _, err := Project(nil, core.MustMapper(fv, 0)); err == nil {
		t.Error("nil intersection accepted")
	}
	inter, _ := IntersectElements(fv, 0, fv, 0)
	if _, err := Project(inter, nil); err == nil {
		t.Error("nil mapper accepted")
	}
}

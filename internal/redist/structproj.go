package redist

import (
	"fmt"

	"parafile/internal/core"
	"parafile/internal/falls"
	"parafile/internal/part"
)

// structproj.go computes the intersection projections structurally —
// on the nested FALLS trees, during the intersection itself — instead
// of walking leaf segments afterwards. This is what keeps the paper's
// view-set cost (t_i, Table 1) independent of the matrix size: the
// work is proportional to the representation, not to the data.
//
// The fast path requires every tree level of both prepared sets to be
// single-member, which holds for the regular array distributions the
// paper optimizes for; anything else falls back to the segment-walk
// Project, which is always correct.

// IntersectProjectElements computes the intersection of two partition
// elements together with its projections onto both elements' linear
// spaces — the combined operation Clusterfile performs at view-set
// time (§8.1).
func IntersectProjectElements(f1 *part.File, e1 int, f2 *part.File, e2 int) (*Intersection, *Projection, *Projection, error) {
	if f1 == nil || f2 == nil {
		return nil, nil, nil, fmt.Errorf("redist: nil file")
	}
	if e1 < 0 || e1 >= f1.Pattern.Len() || e2 < 0 || e2 >= f2.Pattern.Len() {
		return nil, nil, nil, fmt.Errorf("redist: element index out of range")
	}
	z1, z2 := f1.Pattern.Size(), f2.Pattern.Size()
	period := falls.Lcm64(z1, z2)
	base := max64(f1.Displacement, f2.Displacement)
	s1 := prepare(f1.Pattern.Element(e1).Set, z1, period, base-f1.Displacement)
	s2 := prepare(f2.Pattern.Element(e2).Set, z2, period, base-f2.Displacement)

	if structuralOK(s1) && structuralOK(s2) {
		inter, proj1, proj2, err := intersectProjectFast(s1, s2, period)
		if err == nil {
			inter.Base = base
			proj1.Period = period / z1 * elementSize(f1, e1)
			proj2.Period = period / z2 * elementSize(f2, e2)
			// The fast path counts element bytes from the alignment
			// base; shift to the true element phase (bytes before the
			// base are element bytes too).
			proj1.Set = rotateToPhase(proj1.Set, proj1.Period, phaseBias(f1, e1, base))
			proj2.Set = rotateToPhase(proj2.Set, proj2.Period, phaseBias(f2, e2, base))
			return inter, proj1, proj2, nil
		}
		// Structural conditions failed mid-way: fall through to the
		// walk-based path.
	}
	inter, err := IntersectElements(f1, e1, f2, e2)
	if err != nil {
		return nil, nil, nil, err
	}
	m1, err := core.NewMapper(f1, e1)
	if err != nil {
		return nil, nil, nil, err
	}
	m2, err := core.NewMapper(f2, e2)
	if err != nil {
		return nil, nil, nil, err
	}
	proj1, err := Project(inter, m1)
	if err != nil {
		return nil, nil, nil, err
	}
	proj2, err := Project(inter, m2)
	if err != nil {
		return nil, nil, nil, err
	}
	return inter, proj1, proj2, nil
}

func elementSize(f *part.File, e int) int64 { return f.Pattern.Element(e).Set.Size() }

// phaseBias counts the element bytes of (f, e) that precede the
// alignment base in the file: full pattern repetitions plus the
// element's share of the partial one.
func phaseBias(f *part.File, e int, base int64) int64 {
	delta := base - f.Displacement
	if delta <= 0 {
		return 0
	}
	set := f.Pattern.Element(e).Set
	z := f.Pattern.Size()
	return delta/z*set.Size() + countBelowSet(set, delta%z)
}

// structuralOK reports whether every level of the set is
// single-member, the precondition of the structural fast path.
func structuralOK(s falls.Set) bool {
	if len(s) > 1 {
		return false
	}
	for _, n := range s {
		if !structuralOK(n.Inner) {
			return false
		}
	}
	return true
}

// tri carries one intersection piece with its two projections.
type tri struct {
	inter, p1, p2 *falls.Nested
}

var errStructural = fmt.Errorf("redist: structural projection precondition violated")

// intersectProjectFast runs the nested intersection while building
// both projection trees. All three outputs describe one period.
func intersectProjectFast(s1, s2 falls.Set, period int64) (*Intersection, *Projection, *Projection, error) {
	pieces, err := intersectSetsTri(s1, 0, s2, 0, 0, period-1)
	if err != nil {
		return nil, nil, nil, err
	}
	inter := &Intersection{Period: period}
	var i1, i2 []*falls.Nested
	var in []*falls.Nested
	for _, t := range pieces {
		in = append(in, t.inter)
		i1 = append(i1, t.p1)
		i2 = append(i2, t.p2)
	}
	inter.Set = assemble(in)
	proj1 := &Projection{Set: assemble(i1), Bytes: inter.Set.Size()}
	proj2 := &Projection{Set: assemble(i2), Bytes: inter.Set.Size()}
	if proj1.Set.Size() != proj1.Bytes || proj2.Set.Size() != proj2.Bytes {
		return nil, nil, nil, errStructural
	}
	return inter, proj1, proj2, nil
}

// intersectSetsTri mirrors intersectSets, producing projection trees
// alongside. Sets are single-member by precondition (or empty).
func intersectSetsTri(s1 falls.Set, base1 int64, s2 falls.Set, base2 int64, w0, w1 int64) ([]tri, error) {
	var out []tri
	for _, m1 := range s1 {
		for _, m2 := range s2 {
			ts, err := intersectMembersTri(m1, base1, m2, base2, w0, w1)
			if err != nil {
				return nil, err
			}
			out = append(out, ts...)
		}
	}
	return out, nil
}

func intersectMembersTri(m1 *falls.Nested, base1 int64, m2 *falls.Nested, base2 int64, w0, w1 int64) ([]tri, error) {
	abs1 := m1.FALLS.Shift(base1)
	abs2 := m2.FALLS.Shift(base2)
	c1 := falls.CutFALLSAbs(abs1, w0, w1)
	c2 := falls.CutFALLSAbs(abs2, w0, w1)
	var out []tri
	for _, g1 := range c1 {
		for _, g2 := range c2 {
			h1, h2 := harmonize(g1, m1, g2, m2)
			for _, gg1 := range h1 {
				for _, gg2 := range h2 {
					for _, p := range intersectFlat(gg1, gg2) {
						t, keep, err := attachInnerTri(p, m1, base1, m2, base2)
						if err != nil {
							return nil, err
						}
						if keep {
							out = append(out, t)
						}
					}
				}
			}
		}
	}
	return out, nil
}

// attachInnerTri recurses into the inner sets for one flat piece and
// builds the piece's intersection member plus its two projection
// members. base_k is the frame shift of side k's member coordinates
// (frame position = member coordinate + base_k).
func attachInnerTri(p falls.FALLS, m1 *falls.Nested, base1 int64, m2 *falls.Nested, base2 int64) (tri, bool, error) {
	o1 := falls.Mod64(p.L-base1-m1.L, m1.S)
	o2 := falls.Mod64(p.L-base2-m2.L, m2.S)

	in1 := m1.Inner
	if len(in1) == 0 {
		in1 = denseSet(m1.BlockLen())
	}
	in2 := m2.Inner
	if len(in2) == 0 {
		in2 = denseSet(m2.BlockLen())
	}

	// Spacing per side for repeating pieces.
	sp1, err := spacingFor(p, m1)
	if err != nil {
		return tri{}, false, err
	}
	sp2, err := spacingFor(p, m2)
	if err != nil {
		return tri{}, false, err
	}

	// Projected widths: side-k bytes within the piece's block window
	// (member coordinates).
	w1 := countRangeNested(m1, p.L-base1, p.L-base1+p.BlockLen()-1)
	w2 := countRangeNested(m2, p.L-base2, p.L-base2+p.BlockLen()-1)
	if w1 == 0 || w2 == 0 {
		return tri{}, false, nil
	}

	// Element offsets of the piece start within this level's frame:
	// side-k bytes between the frame origin and p.L.
	e1 := countBelowNested(m1, p.L-base1) - countBelowNested(m1, -base1)
	e2 := countBelowNested(m2, p.L-base2) - countBelowNested(m2, -base2)

	mkProj := func(start, width, spacing int64, inner falls.Set) (*falls.Nested, error) {
		s := spacing
		if p.N == 1 {
			s = width
		}
		f, err := falls.New(start, start+width-1, s, p.N)
		if err != nil {
			return nil, errStructural
		}
		n := &falls.Nested{FALLS: f, Inner: inner}
		if err := n.Validate(); err != nil {
			return nil, errStructural
		}
		return n, nil
	}

	if len(m1.Inner) == 0 && len(m2.Inner) == 0 {
		// Leaf piece: contiguous common bytes on both sides.
		p1, err := mkProj(e1, p.BlockLen(), sp1, nil)
		if err != nil {
			return tri{}, false, err
		}
		p2, err := mkProj(e2, p.BlockLen(), sp2, nil)
		if err != nil {
			return tri{}, false, err
		}
		return tri{inter: falls.Leaf(p), p1: p1, p2: p2}, true, nil
	}

	// Recurse into the block.
	inner, err := intersectSetsTri(in1, -o1, in2, -o2, 0, p.BlockLen()-1)
	if err != nil {
		return tri{}, false, err
	}
	if len(inner) == 0 {
		return tri{}, false, nil
	}
	var iSet, p1Set, p2Set []*falls.Nested
	for _, t := range inner {
		iSet = append(iSet, t.inter)
		p1Set = append(p1Set, t.p1)
		p2Set = append(p2Set, t.p2)
	}
	interInner := assemble(iSet)
	proj1Inner := assemble(p1Set)
	proj2Inner := assemble(p2Set)
	if proj1Inner.Size() != interInner.Size() || proj2Inner.Size() != interInner.Size() {
		return tri{}, false, errStructural
	}

	interMember := &falls.Nested{FALLS: p, Inner: interInner}
	if isDense(interInner, p.BlockLen()) {
		interMember = falls.Leaf(p)
	}
	p1, err := mkProj(e1, w1, sp1, collapseDense(proj1Inner, w1))
	if err != nil {
		return tri{}, false, err
	}
	p2, err := mkProj(e2, w2, sp2, collapseDense(proj2Inner, w2))
	if err != nil {
		return tri{}, false, err
	}
	return tri{inter: interMember, p1: p1, p2: p2}, true, nil
}

// collapseDense drops an inner set that densely covers [0, width).
func collapseDense(s falls.Set, width int64) falls.Set {
	if isDense(s, width) {
		return nil
	}
	return s
}

// spacingFor returns the element-space distance between consecutive
// repetitions of piece p on the side of member m.
func spacingFor(p falls.FALLS, m *falls.Nested) (int64, error) {
	if p.N == 1 {
		return 0, nil
	}
	if len(m.Inner) == 0 && m.N == 1 {
		// The side is one dense block here: element distance equals
		// file distance.
		return p.S, nil
	}
	if p.S%m.S != 0 {
		return 0, errStructural
	}
	blockBytes := m.BlockLen()
	if len(m.Inner) > 0 {
		blockBytes = m.Inner.Size()
	}
	return p.S / m.S * blockBytes, nil
}

// countBelowSet returns the number of selected bytes of s at
// coordinates < x (set-local coordinates), computed arithmetically in
// O(members · depth).
func countBelowSet(s falls.Set, x int64) int64 {
	var total int64
	for _, n := range s {
		if x <= n.L {
			break
		}
		total += countBelowNested(n, x)
	}
	return total
}

func countBelowNested(n *falls.Nested, x int64) int64 {
	if x <= n.L {
		return 0
	}
	i := (x - n.L) / n.S
	size := n.Size()
	blockBytes := n.BlockLen()
	if len(n.Inner) > 0 {
		blockBytes = n.Inner.Size()
	}
	if i >= n.N {
		return size
	}
	rem := x - n.L - i*n.S
	var within int64
	if len(n.Inner) == 0 {
		within = min64(rem, n.BlockLen())
	} else {
		within = countBelowSet(n.Inner, rem)
	}
	return i*blockBytes + within
}

// countRangeNested counts the selected bytes of n in [lo, hi]
// (member-local coordinates).
func countRangeNested(n *falls.Nested, lo, hi int64) int64 {
	if hi < lo {
		return 0
	}
	return countBelowNested(n, hi+1) - countBelowNested(n, lo)
}

package redist

// metrics.go names the package's observability series. All
// instrumentation is optional: a nil obs.Registry in CompileOptions
// (or an uninstrumented cache) records nothing and allocates nothing.
const (
	// MetricCompileNs is the wall-clock plan-compilation latency
	// histogram (nanoseconds).
	MetricCompileNs = "parafile_redist_compile_ns"
	// MetricCompilesSeq / MetricCompilesPar count compilations by
	// whether the pairwise loop ran on one worker or several.
	MetricCompilesSeq = `parafile_redist_compiles_total{mode="seq"}`
	MetricCompilesPar = `parafile_redist_compiles_total{mode="par"}`
	// MetricPairs / MetricPairsNonEmpty count element pairs examined
	// and pairs whose intersection was non-empty.
	MetricPairs         = "parafile_redist_pairs_total"
	MetricPairsNonEmpty = "parafile_redist_pairs_nonempty_total"
	// MetricSegmentsRaw / MetricSegments count copy runs per compiled
	// plan before and after the coalescing pass (equal when coalescing
	// is disabled).
	MetricSegmentsRaw = "parafile_redist_segments_raw_total"
	MetricSegments    = "parafile_redist_segments_total"

	// planCachePrefix / pairCachePrefix root the hits/misses/evictions
	// counters and the entries gauge of the two caches:
	// <prefix>_hits_total, <prefix>_misses_total,
	// <prefix>_evictions_total, <prefix>_entries.
	planCachePrefix = "parafile_redist_plan_cache"
	pairCachePrefix = "parafile_redist_pair_cache"
)

package redist_test

import (
	"fmt"

	"parafile/internal/falls"
	"parafile/internal/part"
	"parafile/internal/redist"
)

func fig4View() falls.Set {
	return falls.Set{falls.MustNested(falls.MustNew(0, 7, 16, 2), falls.Set{falls.MustLeaf(0, 1, 4, 2)})}
}

func fig4Subfile() falls.Set {
	return falls.Set{falls.MustNested(falls.MustNew(0, 3, 8, 4), falls.Set{falls.MustLeaf(0, 0, 2, 2)})}
}

// figureFile completes one element into a full 32-byte partition.
func figureFile(set falls.Set) *part.File {
	elems := []part.Element{{Name: "elem", Set: set}}
	if rest := falls.Complement(set, 32); len(rest) > 0 {
		elems = append(elems, part.Element{Name: "rest", Set: rest})
	}
	return part.MustFile(0, part.MustPattern(elems...))
}

// A redistribution plan converts a matrix between two layouts
// segment-wise; content is preserved byte for byte.
func ExamplePlan() {
	rows, _ := part.RowBlocks(4, 4, 2)
	cols, _ := part.ColBlocks(4, 4, 2)
	src := part.MustFile(0, rows)
	dst := part.MustFile(0, cols)

	img := []byte("the quick brown.")
	srcBufs := redist.SplitFile(src, img)

	plan, _ := redist.NewPlan(src, dst)
	dstBufs := make([][]byte, dst.Pattern.Len())
	for e := range dstBufs {
		dstBufs[e] = make([]byte, dst.ElementBytes(e, int64(len(img))))
	}
	_ = plan.Execute(srcBufs, dstBufs, int64(len(img)))

	fmt.Printf("element 0: %q\n", dstBufs[0])
	fmt.Printf("element 1: %q\n", dstBufs[1])
	back, _ := redist.JoinFile(dst, dstBufs, int64(len(img)))
	fmt.Printf("rejoined: %q\n", back)
	// Output:
	// element 0: "thquk ow"
	// element 1: "e icbrn."
	// rejoined: "the quick brown."
}

// IntersectProjectElements computes the bytes two partition elements
// share and where those bytes sit in each element's linear space — the
// paper's §7 Figure 4 example.
func ExampleIntersectProjectElements() {
	// V = {(0,7,16,2,{(0,1,4,2)})} and S = {(0,3,8,4,{(0,0,2,2)})},
	// completed into full partitions of a 32-byte pattern.
	fv := figureFile(fig4View())
	fs := figureFile(fig4Subfile())
	inter, projV, projS, _ := redist.IntersectProjectElements(fv, 0, fs, 0)
	fmt.Println("V∩S bytes/period:", inter.BytesPerPeriod())
	fmt.Println("PROJ_V:", projV.Set)
	fmt.Println("PROJ_S:", projS.Set)
	// Output:
	// V∩S bytes/period: 2
	// PROJ_V: {(0,0,4,2)}
	// PROJ_S: {(0,0,4,2)}
}

package redist

import (
	"math/rand"
	"testing"

	"parafile/internal/part"
)

func TestScheduleIdentity(t *testing.T) {
	rows, _ := part.RowBlocks(8, 8, 4)
	plan, err := NewPlan(part.MustFile(0, rows), part.MustFile(0, rows))
	if err != nil {
		t.Fatal(err)
	}
	s, err := plan.BuildSchedule(64)
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Messages) != 4 {
		t.Fatalf("identity schedule has %d messages, want 4", len(s.Messages))
	}
	for _, m := range s.Messages {
		if m.From != m.To || m.Bytes != 16 || m.Runs != 1 {
			t.Errorf("identity message wrong: %+v", m)
		}
	}
	if s.MaxFanOut() != 1 {
		t.Errorf("identity fan-out = %d, want 1", s.MaxFanOut())
	}
	if s.TotalBytes() != 64 {
		t.Errorf("total = %d, want 64", s.TotalBytes())
	}
}

func TestScheduleRowsToCols(t *testing.T) {
	rows, _ := part.RowBlocks(8, 8, 4)
	cols, _ := part.ColBlocks(8, 8, 4)
	plan, err := NewPlan(part.MustFile(0, rows), part.MustFile(0, cols))
	if err != nil {
		t.Fatal(err)
	}
	s, err := plan.BuildSchedule(64)
	if err != nil {
		t.Fatal(err)
	}
	// All-to-all: 16 messages of 4 bytes (2 rows × 2 columns), in 2
	// runs each.
	if len(s.Messages) != 16 {
		t.Fatalf("schedule has %d messages, want 16", len(s.Messages))
	}
	for _, m := range s.Messages {
		if m.Bytes != 4 || m.Runs != 2 {
			t.Errorf("message %+v, want 4 bytes in 2 runs", m)
		}
	}
	if s.MaxFanOut() != 4 {
		t.Errorf("fan-out = %d, want 4", s.MaxFanOut())
	}
	if got := len(s.SendsOf(2)); got != 4 {
		t.Errorf("element 2 sends %d messages, want 4", got)
	}
	if got := len(s.RecvsOf(3)); got != 4 {
		t.Errorf("element 3 receives %d messages, want 4", got)
	}
}

// TestPropertyScheduleConservation: schedules account for every byte
// of the redistributed range, for random partition pairs and lengths.
func TestPropertyScheduleConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(170))
	for iter := 0; iter < 60; iter++ {
		z1 := int64(8 * (1 + rng.Intn(6)))
		z2 := int64(8 * (1 + rng.Intn(6)))
		src := fileAround(t, randSetIn(rng, z1), z1, 0)
		dst := fileAround(t, randSetIn(rng, z2), z2, 0)
		plan, err := NewPlan(src, dst)
		if err != nil {
			t.Fatal(err)
		}
		length := 1 + rng.Int63n(3*falls64Lcm(z1, z2))
		s, err := plan.BuildSchedule(length)
		if err != nil {
			t.Fatal(err)
		}
		if got := s.TotalBytes(); got != length {
			t.Fatalf("schedule moves %d bytes for length %d (src=%v dst=%v)",
				got, length, src.Pattern, dst.Pattern)
		}
		// Send and receive views agree with the flat list.
		var fromSends int64
		for e := 0; e < src.Pattern.Len(); e++ {
			for _, m := range s.SendsOf(e) {
				fromSends += m.Bytes
			}
		}
		if fromSends != length {
			t.Fatalf("sends sum to %d, want %d", fromSends, length)
		}
	}
}

func TestScheduleValidation(t *testing.T) {
	rows, _ := part.RowBlocks(8, 8, 4)
	plan, _ := NewPlan(part.MustFile(0, rows), part.MustFile(0, rows))
	if _, err := plan.BuildSchedule(-1); err == nil {
		t.Error("negative length accepted")
	}
	s, err := plan.BuildSchedule(0)
	if err != nil || len(s.Messages) != 0 {
		t.Errorf("zero-length schedule = %v, %v", s.Messages, err)
	}
}

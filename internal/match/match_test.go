package match

import (
	"testing"

	"parafile/internal/bench"
	"parafile/internal/clusterfile"
	"parafile/internal/part"
)

func files(t *testing.T, n int64) map[string]*part.File {
	t.Helper()
	rows, err := part.RowBlocks(n, n, 4)
	if err != nil {
		t.Fatal(err)
	}
	cols, err := part.ColBlocks(n, n, 4)
	if err != nil {
		t.Fatal(err)
	}
	sq, err := part.SquareBlocks(n, n, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]*part.File{
		"r": part.MustFile(0, rows),
		"c": part.MustFile(0, cols),
		"b": part.MustFile(0, sq),
	}
}

// TestPerfectMatchScoresOne: identical partitions have score 1, one
// contiguous pair per element.
func TestPerfectMatchScoresOne(t *testing.T) {
	fs := files(t, 64)
	d, err := Compute(fs["r"], fs["r"])
	if err != nil {
		t.Fatal(err)
	}
	if d.Score != 1 {
		t.Errorf("perfect match score = %v, want 1", d.Score)
	}
	if d.Pairs != 4 || d.ContiguousPairs != 4 {
		t.Errorf("pairs = %d/%d contiguous, want 4/4", d.Pairs, d.ContiguousPairs)
	}
	if d.BytesPerPeriod != 64*64 {
		t.Errorf("bytes per period = %d, want %d", d.BytesPerPeriod, 64*64)
	}
}

// TestScoreOrdering: the matching degree orders the paper's layouts
// r > b > c against a row-block logical partition, at every size.
func TestScoreOrdering(t *testing.T) {
	for _, n := range []int64{64, 256, 1024} {
		fs := files(t, n)
		logical := fs["r"]
		dr, err := Compute(logical, fs["r"])
		if err != nil {
			t.Fatal(err)
		}
		db, err := Compute(logical, fs["b"])
		if err != nil {
			t.Fatal(err)
		}
		dc, err := Compute(logical, fs["c"])
		if err != nil {
			t.Fatal(err)
		}
		if !(dr.Score > db.Score && db.Score > dc.Score) {
			t.Errorf("n=%d: score ordering violated: r=%v b=%v c=%v",
				n, dr.Score, db.Score, dc.Score)
		}
		if !(dr.MeanRunBytes > db.MeanRunBytes && db.MeanRunBytes >= dc.MeanRunBytes) {
			t.Errorf("n=%d: mean run ordering violated: r=%v b=%v c=%v",
				n, dr.MeanRunBytes, db.MeanRunBytes, dc.MeanRunBytes)
		}
	}
}

// TestPredictRank ranks candidate layouts best-first.
func TestPredictRank(t *testing.T) {
	fs := files(t, 256)
	logical := fs["r"]
	candidates := []*part.File{fs["c"], fs["r"], fs["b"]}
	order, degrees, err := PredictRank(logical, candidates)
	if err != nil {
		t.Fatal(err)
	}
	if order[0] != 1 || order[1] != 2 || order[2] != 0 {
		t.Errorf("rank order = %v (scores %v,%v,%v), want [1 2 0]",
			order, degrees[0].Score, degrees[1].Score, degrees[2].Score)
	}
}

// TestScorePredictsWritePerformance closes the paper's §9 loop: the
// matching degree predicts the virtual write time ordering on the
// simulated cluster.
func TestScorePredictsWritePerformance(t *testing.T) {
	type result struct {
		score float64
		tnet  int64
	}
	var results []result
	for _, phys := range []string{"r", "b", "c"} {
		w, err := bench.NewWorkload(phys, 256)
		if err != nil {
			t.Fatal(err)
		}
		pp, _ := bench.LayoutPattern(phys, 256)
		lp, _ := bench.LayoutPattern("r", 256)
		d, err := Compute(part.MustFile(0, lp), part.MustFile(0, pp))
		if err != nil {
			t.Fatal(err)
		}
		ops, err := w.WriteAll(clusterfile.ToBufferCache)
		if err != nil {
			t.Fatal(err)
		}
		var sum int64
		for _, op := range ops {
			sum += op.Stats.TNet
		}
		results = append(results, result{score: d.Score, tnet: sum / 4})
	}
	// Higher score must mean lower write time, pairwise.
	for i := range results {
		for j := range results {
			if results[i].score > results[j].score && results[i].tnet >= results[j].tnet {
				t.Errorf("score %v (t_net %d) should beat score %v (t_net %d)",
					results[i].score, results[i].tnet, results[j].score, results[j].tnet)
			}
		}
	}
}

func TestComputeValidation(t *testing.T) {
	fs := files(t, 64)
	if _, err := Compute(nil, fs["r"]); err == nil {
		t.Error("nil file accepted")
	}
}

// Package match implements the paper's stated future work (§9): a
// quantitative description of the matching degree of two partitions of
// the same file, suitable for predicting how access performance
// relates to the layout ("we are interested in finding a quantitative
// description of the matching degree of two partitions; subsequently,
// we would like to investigate how the performance of parallel
// applications relates to this quantitative evaluation").
//
// The metric is computed from the same intersections the
// redistribution algorithm uses, so it costs one view-set and nothing
// more.
package match

import (
	"fmt"
	"math"

	"parafile/internal/part"
	"parafile/internal/redist"
)

// Degree quantifies how well two partitions of the same file match.
type Degree struct {
	// Pairs is the number of element pairs that share bytes — the
	// communication pairs a redistribution (or a write through views)
	// needs.
	Pairs int
	// ContiguousPairs counts pairs whose shared bytes are contiguous
	// in both elements' linear spaces — the zero-copy pairs of §8.1.
	ContiguousPairs int
	// BytesPerPeriod is the data volume shared per intersection
	// period (the whole pattern lcm).
	BytesPerPeriod int64
	// RunsPerPeriod is the number of maximal contiguous runs the
	// shared bytes split into, per period, summed over pairs.
	RunsPerPeriod int64
	// MeanRunBytes is BytesPerPeriod / RunsPerPeriod — the paper's
	// "many small pieces" fragmentation measure inverted.
	MeanRunBytes float64
	// Score is the normalized matching degree in (0, 1]: the minimum
	// possible number of runs — one per element of the finer partition
	// — over the actual number of runs. 1 means each element maps onto
	// exactly one contiguous peer region (the optimal match of §6.2);
	// values near 0 mean heavy fragmentation and extra communication
	// pairs.
	Score float64
}

// Compute evaluates the matching degree of two partitions of the same
// file.
func Compute(f1, f2 *part.File) (*Degree, error) {
	if f1 == nil || f2 == nil {
		return nil, fmt.Errorf("match: nil file")
	}
	d := &Degree{}
	for e1 := 0; e1 < f1.Pattern.Len(); e1++ {
		for e2 := 0; e2 < f2.Pattern.Len(); e2++ {
			inter, p1, p2, err := redist.IntersectProjectElements(f1, e1, f2, e2)
			if err != nil {
				return nil, err
			}
			if inter.Empty() {
				continue
			}
			d.Pairs++
			d.BytesPerPeriod += inter.BytesPerPeriod()
			runs := inter.Set.SegmentCount()
			d.RunsPerPeriod += runs
			if p1.Set.SegmentCount() == 1 && p2.Set.SegmentCount() == 1 {
				d.ContiguousPairs++
			}
		}
	}
	if d.RunsPerPeriod > 0 {
		d.MeanRunBytes = float64(d.BytesPerPeriod) / float64(d.RunsPerPeriod)
		minRuns := f1.Pattern.Len()
		if f2.Pattern.Len() > minRuns {
			minRuns = f2.Pattern.Len()
		}
		d.Score = float64(minRuns) / float64(d.RunsPerPeriod)
	}
	return d, nil
}

// String summarizes the degree.
func (d *Degree) String() string {
	return fmt.Sprintf("match(score=%.4f, pairs=%d, contiguous=%d, runs/period=%d, mean run=%.0fB)",
		d.Score, d.Pairs, d.ContiguousPairs, d.RunsPerPeriod, d.MeanRunBytes)
}

// PredictRank orders a set of candidate physical layouts for a given
// logical partition: higher score first. It returns indices into the
// candidates slice. Ties break toward fewer communication pairs.
func PredictRank(logical *part.File, candidates []*part.File) ([]int, []*Degree, error) {
	degrees := make([]*Degree, len(candidates))
	for i, c := range candidates {
		d, err := Compute(logical, c)
		if err != nil {
			return nil, nil, err
		}
		degrees[i] = d
	}
	order := make([]int, len(candidates))
	for i := range order {
		order[i] = i
	}
	// Insertion sort by descending score, ascending pairs.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0; j-- {
			a, b := degrees[order[j-1]], degrees[order[j]]
			if b.Score > a.Score+1e-12 ||
				(math.Abs(b.Score-a.Score) <= 1e-12 && b.Pairs < a.Pairs) {
				order[j-1], order[j] = order[j], order[j-1]
			} else {
				break
			}
		}
	}
	return order, degrees, nil
}

// bench_test.go regenerates the paper's evaluation as testing.B
// benchmarks — one benchmark per published table — plus the ablation
// benchmarks called out in DESIGN.md. Per-phase results are attached
// as custom benchmark metrics (µs units matching the paper's tables).
//
// Run:  go test -bench=. -benchmem
package parafile_test

import (
	"fmt"
	"testing"

	"parafile/internal/baseline"
	"parafile/internal/bench"
	"parafile/internal/clusterfile"
	"parafile/internal/core"
	"parafile/internal/falls"
	"parafile/internal/part"
	"parafile/internal/redist"
)

// BenchmarkTable1 regenerates Table 1: the write-time breakdown at a
// compute node for every (size, physical layout) configuration. The
// paper's published values appear in bench.PaperTable1.
func BenchmarkTable1(b *testing.B) {
	for _, n := range bench.Sizes {
		for _, phys := range bench.Layouts {
			name := fmt.Sprintf("size=%d/phys=%s", n, phys)
			b.Run(name, func(b *testing.B) {
				var row bench.Table1Row
				for i := 0; i < b.N; i++ {
					r1, _, err := bench.RunConfig(phys, n)
					if err != nil {
						b.Fatal(err)
					}
					row = r1
				}
				b.ReportMetric(row.TIntersectUs, "t_i_µs")
				b.ReportMetric(row.TMapUs, "t_m_µs")
				b.ReportMetric(row.TGatherUs, "t_g_µs")
				b.ReportMetric(row.TNetBcUs, "t_net_bc_µs")
				b.ReportMetric(row.TNetDiskUs, "t_net_disk_µs")
			})
		}
	}
}

// BenchmarkTable2 regenerates Table 2: the scatter time at an I/O node
// for every configuration. Published values: bench.PaperTable2.
func BenchmarkTable2(b *testing.B) {
	for _, n := range bench.Sizes {
		for _, phys := range bench.Layouts {
			name := fmt.Sprintf("size=%d/phys=%s", n, phys)
			b.Run(name, func(b *testing.B) {
				var row bench.Table2Row
				for i := 0; i < b.N; i++ {
					_, r2, err := bench.RunConfig(phys, n)
					if err != nil {
						b.Fatal(err)
					}
					row = r2
				}
				b.ReportMetric(row.ScBcUs, "t_sc_bc_µs")
				b.ReportMetric(row.ScDiskUs, "t_sc_disk_µs")
				b.ReportMetric(row.ScRealUs, "t_sc_host_µs")
			})
		}
	}
}

// matrixPair returns row-block and column-block files for an n×n
// matrix — the worst-matching pair of the evaluation.
func matrixPair(b *testing.B, n int64) (*part.File, *part.File) {
	b.Helper()
	rows, err := part.RowBlocks(n, n, 4)
	if err != nil {
		b.Fatal(err)
	}
	cols, err := part.ColBlocks(n, n, 4)
	if err != nil {
		b.Fatal(err)
	}
	return part.MustFile(0, rows), part.MustFile(0, cols)
}

// BenchmarkAblationSegmentsVsBytes compares the paper's segment-wise
// redistribution plan against the per-byte mapping baseline §3 argues
// against.
func BenchmarkAblationSegmentsVsBytes(b *testing.B) {
	const n = 256
	src, dst := matrixPair(b, n)
	img := make([]byte, n*n)
	for i := range img {
		img[i] = byte(i * 31)
	}
	srcBufs := redist.SplitFile(src, img)
	dstBufs := redist.SplitFile(dst, img) // correct sizes; contents overwritten

	b.Run("segment-plan", func(b *testing.B) {
		plan, err := redist.NewPlan(src, dst)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(n * n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := plan.Execute(srcBufs, dstBufs, n*n); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("per-byte", func(b *testing.B) {
		b.SetBytes(n * n)
		for i := 0; i < b.N; i++ {
			if err := baseline.BytewiseRedistribute(src, dst, srcBufs, dstBufs, n*n); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationPeriodicVsSweep compares the periodic
// INTERSECT-FALLS of [14] against a naive two-pointer segment sweep.
func BenchmarkAblationPeriodicVsSweep(b *testing.B) {
	f1 := falls.MustNew(0, 63, 2048, 4096)   // column-block-like family
	f2 := falls.MustNew(0, 2047, 8192, 1024) // row-band-like family
	b.Run("periodic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if got := falls.IntersectFALLS(f1, f2); len(got) == 0 {
				b.Fatal("empty intersection")
			}
		}
	})
	b.Run("sweep", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if got := falls.IntersectFALLSSweep(f1, f2); len(got) == 0 {
				b.Fatal("empty intersection")
			}
		}
	})
}

// BenchmarkAblationViewAmortization shows §8.2's amortization claim:
// paying the intersection at every access versus once at view-set
// time.
func BenchmarkAblationViewAmortization(b *testing.B) {
	const n = 512
	b.Run("set-view-once", func(b *testing.B) {
		w, err := bench.NewWorkload("c", n)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := w.WriteAll(clusterfile.ToBufferCache); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("set-view-every-access", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			w, err := bench.NewWorkload("c", n) // includes 4 SetView calls
			if err != nil {
				b.Fatal(err)
			}
			if _, err := w.WriteAll(clusterfile.ToBufferCache); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkAblationNestedVsFlat compares the compact nested FALLS
// representation against flattened leaf-segment lists for mapping
// through a two-level pattern.
func BenchmarkAblationNestedVsFlat(b *testing.B) {
	// A square-block partition of a 1024×1024 matrix: nested (block of
	// rows × block of columns) vs the same byte set as flat segments.
	sq, err := part.SquareBlocks(1024, 1024, 2, 2)
	if err != nil {
		b.Fatal(err)
	}
	nestedFile := part.MustFile(0, sq)

	flatElems := make([]part.Element, sq.Len())
	for e := 0; e < sq.Len(); e++ {
		flatElems[e] = part.Element{
			Name: sq.Element(e).Name,
			Set:  falls.LeavesToSet(sq.Element(e).Set.Segments()),
		}
	}
	flatPat, err := part.NewPattern(flatElems...)
	if err != nil {
		b.Fatal(err)
	}
	flatFile := part.MustFile(0, flatPat)

	offsets := make([]int64, 512)
	for i := range offsets {
		offsets[i] = int64(i) * 2047
	}
	run := func(b *testing.B, f *part.File) {
		m := core.MustMapper(f, 3)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for _, x := range offsets {
				if _, err := m.Map(x); err == nil {
					continue
				}
			}
		}
	}
	b.Run("nested", func(b *testing.B) { run(b, nestedFile) })
	b.Run("flat-segments", func(b *testing.B) { run(b, flatFile) })
}

// BenchmarkAblationStructuralVsWalkProjection compares the one-pass
// structural intersection+projection (work proportional to the
// representation) against intersecting and then walking leaf segments
// (work proportional to the matrix), across matrix sizes — the design
// choice that keeps Table 1's t_i flat.
func BenchmarkAblationStructuralVsWalkProjection(b *testing.B) {
	for _, n := range []int64{256, 1024, 4096} {
		rowsF, colsF := matrixPair(b, n)
		b.Run(fmt.Sprintf("structural/n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, _, err := redist.IntersectProjectElements(rowsF, 0, colsF, 0); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("walk/n=%d", n), func(b *testing.B) {
			m1 := core.MustMapper(rowsF, 0)
			m2 := core.MustMapper(colsF, 0)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				inter, err := redist.IntersectElements(rowsF, 0, colsF, 0)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := redist.Project(inter, m1); err != nil {
					b.Fatal(err)
				}
				if _, err := redist.Project(inter, m2); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationDimwiseVsGeneral compares PARADIGM's same-shape
// dimension-wise redistribution against the general nested-FALLS plan
// on a case both handle (row blocks to column blocks).
func BenchmarkAblationDimwiseVsGeneral(b *testing.B) {
	const n = 256
	srcSpec := part.ArraySpec{Dims: []int64{n, n}, ElemSize: 1,
		Dists: []part.DimDist{{Kind: part.Block, Procs: 4}, {Kind: part.All}}}
	dstSpec := part.ArraySpec{Dims: []int64{n, n}, ElemSize: 1,
		Dists: []part.DimDist{{Kind: part.All}, {Kind: part.Block, Procs: 4}}}
	srcPat, _ := part.NDArray(srcSpec)
	dstPat, _ := part.NDArray(dstSpec)
	srcFile := part.MustFile(0, srcPat)
	dstFile := part.MustFile(0, dstPat)
	img := make([]byte, n*n)
	srcBufs := redist.SplitFile(srcFile, img)
	dstBufs := redist.SplitFile(dstFile, img)
	b.Run("general-plan", func(b *testing.B) {
		plan, err := redist.NewPlan(srcFile, dstFile)
		if err != nil {
			b.Fatal(err)
		}
		b.SetBytes(n * n)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if err := plan.Execute(srcBufs, dstBufs, n*n); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("dimension-wise", func(b *testing.B) {
		b.SetBytes(n * n)
		for i := 0; i < b.N; i++ {
			if err := baseline.DimwiseRedistribute(srcSpec, dstSpec, srcBufs, dstBufs); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkNewPlan measures sequential plan compilation on the 2048²
// worst-matching pair (row blocks vs column blocks) — the hot path the
// parallel compiler and the plan cache attack.
func BenchmarkNewPlan(b *testing.B) {
	src, dst := matrixPair(b, 2048)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := redist.NewPlanParallel(src, dst, 1); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkNewPlanParallel is BenchmarkNewPlan over the worker pool
// (GOMAXPROCS workers; the speedup needs a multi-core host).
func BenchmarkNewPlanParallel(b *testing.B) {
	src, dst := matrixPair(b, 2048)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := redist.NewPlanParallel(src, dst, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlanCacheHit measures a warm fingerprint lookup — the cost
// that replaces a full compile once a layout pair has been seen.
func BenchmarkPlanCacheHit(b *testing.B) {
	src, dst := matrixPair(b, 2048)
	cache := redist.NewPlanCache(redist.DefaultCacheCapacity, redist.CompileOptions{})
	if _, _, err := cache.GetOrCompile(src, dst); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, hit, err := cache.GetOrCompile(src, dst)
		if err != nil {
			b.Fatal(err)
		}
		if !hit {
			b.Fatal("expected cache hit")
		}
	}
}

// BenchmarkMappingFunctions measures the raw MAP / MAP⁻¹ cost on the
// paper's layouts.
func BenchmarkMappingFunctions(b *testing.B) {
	for _, phys := range bench.Layouts {
		pat, err := bench.LayoutPattern(phys, 1024)
		if err != nil {
			b.Fatal(err)
		}
		f := part.MustFile(0, pat)
		m := core.MustMapper(f, 0)
		b.Run("map/"+phys, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := m.MapNext(int64(i) % (1024 * 1024)); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("mapinv/"+phys, func(b *testing.B) {
			size := m.ElementSize()
			for i := 0; i < b.N; i++ {
				if _, err := m.MapInv(int64(i) % size); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkGatherScatter measures the §8 copy procedures on a
// fragmented projection (row view over column subfile).
func BenchmarkGatherScatter(b *testing.B) {
	const n = 1024
	rowsF, colsF := matrixPair(b, n)
	inter, err := redist.IntersectElements(rowsF, 0, colsF, 0)
	if err != nil {
		b.Fatal(err)
	}
	proj, err := redist.Project(inter, core.MustMapper(rowsF, 0))
	if err != nil {
		b.Fatal(err)
	}
	span := proj.Period
	src := make([]byte, span)
	packed := make([]byte, proj.BytesIn(0, span-1))
	b.Run("gather", func(b *testing.B) {
		b.SetBytes(int64(len(packed)))
		for i := 0; i < b.N; i++ {
			if _, err := redist.Gather(packed, src, proj, 0, span-1); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("scatter", func(b *testing.B) {
		b.SetBytes(int64(len(packed)))
		for i := 0; i < b.N; i++ {
			if _, err := redist.Scatter(src, packed, proj, 0, span-1); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkViewSet measures the view-set cost (t_i) alone for each
// layout at 1024².
func BenchmarkViewSet(b *testing.B) {
	for _, phys := range bench.Layouts {
		b.Run(phys, func(b *testing.B) {
			pp, err := bench.LayoutPattern(phys, 1024)
			if err != nil {
				b.Fatal(err)
			}
			lp, err := bench.LayoutPattern("r", 1024)
			if err != nil {
				b.Fatal(err)
			}
			pf := part.MustFile(0, pp)
			lf := part.MustFile(0, lp)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for s := 0; s < 4; s++ {
					inter, err := redist.IntersectElements(lf, 0, pf, s)
					if err != nil {
						b.Fatal(err)
					}
					if inter.Empty() {
						continue
					}
					if _, err := redist.Project(inter, core.MustMapper(lf, 0)); err != nil {
						b.Fatal(err)
					}
					if _, err := redist.Project(inter, core.MustMapper(pf, s)); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// MPI-style views: non-contiguous access through derived datatypes
// built on nested FALLS — §3's claim that "MPI data types can be built
// on top of them" and that the MPI-IO file model can be implemented
// with this machinery.
//
// A 2-D matrix lives in a shared file; four "ranks" each own a
// column-block subarray and access it linearly through a file view.
// Pack/Unpack moves a halo column between ranks.
//
// Run: go run ./examples/mpiview
package main

import (
	"bytes"
	"fmt"
	"log"

	"parafile/internal/mpiio"
)

const (
	rows = 8
	cols = 16
)

func main() {
	log.SetFlags(0)

	// The shared file: a rows×cols byte matrix, element (i,j) = i*16+j.
	img := make([]byte, rows*cols)
	for i := 0; i < rows; i++ {
		for j := 0; j < cols; j++ {
			img[i*cols+j] = byte(i*16 + j)
		}
	}
	file := mpiio.NewFile(img)

	fmt.Println("four ranks, each viewing a 4-column block of the 8×16 matrix")
	for rank := 0; rank < 4; rank++ {
		// Subarray datatype: all rows, columns [rank*4, rank*4+4).
		ft, err := mpiio.Subarray(
			[]int64{rows, cols},
			[]int64{0, int64(rank) * 4},
			[]int64{rows, 4},
			1,
		)
		if err != nil {
			log.Fatal(err)
		}
		if err := file.SetView(0, ft); err != nil {
			log.Fatal(err)
		}
		// The rank reads its whole block linearly — 32 bytes, even
		// though they are 8 non-contiguous runs in the file.
		block := make([]byte, ft.Size())
		if _, err := file.ReadAt(block, 0); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  rank %d first row of its block: % x\n", rank, block[:4])
		// Verify against direct indexing.
		for r := 0; r < rows; r++ {
			for c := 0; c < 4; c++ {
				want := img[r*cols+rank*4+c]
				if block[r*4+c] != want {
					log.Fatalf("rank %d: block[%d,%d] = %d, want %d", rank, r, c, block[r*4+c], want)
				}
			}
		}
	}
	fmt.Println("  all views verified against direct indexing")

	// Rank 1 updates its leftmost column through the view: a vector
	// write of one byte per row.
	fmt.Println("\nrank 1 writes its leftmost column (offsets 0,4,8,... of its view)")
	ft, _ := mpiio.Subarray([]int64{rows, cols}, []int64{0, 4}, []int64{rows, 4}, 1)
	file.SetView(0, ft)
	for r := 0; r < rows; r++ {
		if _, err := file.WriteAt([]byte{0xAA}, int64(r*4)); err != nil {
			log.Fatal(err)
		}
	}
	for r := 0; r < rows; r++ {
		if file.Bytes()[r*cols+4] != 0xAA {
			log.Fatalf("column update missing at row %d", r)
		}
	}
	fmt.Println("  column 4 of the file now reads 0xAA in every row")

	// Halo exchange via Pack/Unpack: rank 2 packs its rightmost column
	// and rank 3 unpacks it into a halo buffer.
	fmt.Println("\nhalo exchange: pack rank 2's right column, unpack into rank 3's halo")
	colType, err := mpiio.Vector(rows, 1, cols, 1) // one byte per row, stride one row
	if err != nil {
		log.Fatal(err)
	}
	// Pack straight out of the file image, starting at column 11
	// (rank 2's rightmost).
	packed := make([]byte, colType.Size())
	if _, err := mpiio.Pack(packed, file.Bytes()[11:], colType, 1); err != nil {
		log.Fatal(err)
	}
	halo := make([]byte, colType.Extent())
	if _, err := mpiio.Unpack(halo, packed, colType, 1); err != nil {
		log.Fatal(err)
	}
	var wantCol []byte
	for r := 0; r < rows; r++ {
		wantCol = append(wantCol, file.Bytes()[r*cols+11])
	}
	if !bytes.Equal(packed, wantCol) {
		log.Fatal("packed column wrong")
	}
	fmt.Printf("  packed column: % x\n", packed)
	fmt.Println("  halo buffer populated; pack/unpack round trip verified")
}

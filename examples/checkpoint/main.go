// Checkpoint: an iterative computation periodically saving its
// distributed state through Clusterfile views — the §8.2 amortization
// argument in application form. The view (and with it all
// intersections and projections) is set once; every checkpoint after
// that pays only mapping, gather and transfer.
//
// Four workers iterate a toy heat-diffusion stencil on row bands of a
// matrix and checkpoint every few iterations into a square-block
// partitioned file; at the end the state is restored and verified.
//
// Run: go run ./examples/checkpoint [-n 128] [-iters 12] [-every 4]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"

	"parafile/internal/clusterfile"
	"parafile/internal/part"
	"parafile/internal/sim"
)

func main() {
	log.SetFlags(0)
	n := flag.Int64("n", 128, "matrix side (multiple of 4)")
	iters := flag.Int("iters", 12, "stencil iterations")
	every := flag.Int("every", 4, "checkpoint interval")
	flag.Parse()
	if *n < 8 || *n%4 != 0 {
		log.Fatalf("matrix side %d must be a multiple of 4 and at least 8", *n)
	}

	cluster, err := clusterfile.New(clusterfile.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	sq, err := part.SquareBlocks(*n, *n, 2, 2)
	if err != nil {
		log.Fatal(err)
	}
	file, err := cluster.CreateFile("state.ckpt", part.MustFile(0, sq), nil)
	if err != nil {
		log.Fatal(err)
	}
	rows, err := part.RowBlocks(*n, *n, 4)
	if err != nil {
		log.Fatal(err)
	}
	logical := part.MustFile(0, rows)

	// The computation state: each worker owns a row band.
	per := *n * *n / 4
	state := make([]byte, *n**n)
	for i := range state {
		state[i] = byte(i % 251)
	}

	// Views are set ONCE; t_i is paid here and amortized over every
	// checkpoint (§8.2: "t_i has to be paid only at view setting and
	// can be amortized over several accesses").
	views := make([]*clusterfile.View, 4)
	var tiTotal int64
	for w := 0; w < 4; w++ {
		v, err := file.SetView(w, logical, w)
		if err != nil {
			log.Fatal(err)
		}
		views[w] = v
		tiTotal += v.TIntersect.Microseconds()
	}
	fmt.Printf("view set: 4 workers, square-block file, t_i total %dµs (paid once)\n\n", tiTotal)

	checkpoints := 0
	var netTotal int64
	for it := 1; it <= *iters; it++ {
		stencil(state, *n)
		if it%*every != 0 {
			continue
		}
		ops := make([]*clusterfile.WriteOp, 4)
		for w := 0; w < 4; w++ {
			op, err := views[w].StartWrite(clusterfile.ToBufferCache, 0, per-1,
				state[int64(w)*per:int64(w+1)*per])
			if err != nil {
				log.Fatal(err)
			}
			ops[w] = op
		}
		cluster.RunAll()
		var worst int64
		for w, op := range ops {
			if op.Err != nil {
				log.Fatalf("worker %d checkpoint failed: %v", w, op.Err)
			}
			if op.Stats.TNet > worst {
				worst = op.Stats.TNet
			}
		}
		checkpoints++
		netTotal += worst
		fmt.Printf("iteration %2d: checkpoint %d written (%dµs)\n",
			it, checkpoints, worst/sim.Microsecond)
	}

	fmt.Printf("\n%d checkpoints; view-set cost per checkpoint amortized to %dµs\n",
		checkpoints, tiTotal/int64(checkpoints))

	// Restore: read the last checkpoint back and verify.
	restored := make([]byte, *n**n)
	for w := 0; w < 4; w++ {
		op, err := views[w].StartRead(0, per-1, restored[int64(w)*per:int64(w+1)*per])
		if err != nil {
			log.Fatal(err)
		}
		cluster.RunAll()
		if op.Err != nil {
			log.Fatal(op.Err)
		}
	}
	if !bytes.Equal(restored, state) {
		log.Fatal("restore mismatch!")
	}
	fmt.Printf("restore verified: %d bytes identical to the in-memory state\n", len(state))
	fmt.Printf("total simulated checkpoint time: %dµs\n", netTotal/sim.Microsecond)
}

// stencil applies one toy diffusion step in place (row-major bytes).
func stencil(state []byte, n int64) {
	prev := make([]byte, len(state))
	copy(prev, state)
	for i := int64(1); i < n-1; i++ {
		for j := int64(1); j < n-1; j++ {
			idx := i*n + j
			sum := int(prev[idx-1]) + int(prev[idx+1]) + int(prev[idx-n]) + int(prev[idx+n])
			state[idx] = byte(sum / 4)
		}
	}
}

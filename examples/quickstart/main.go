// Quickstart: the parallel file model in five minutes.
//
// Builds the paper's Figure 3 file (three striped subfiles), maps
// offsets back and forth with MAP/MAP⁻¹, intersects two partitions,
// and performs a first in-memory redistribution.
//
// Run: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"parafile/internal/core"
	"parafile/internal/falls"
	"parafile/internal/part"
	"parafile/internal/redist"
)

func main() {
	log.SetFlags(0)

	// --- 1. Describe a partition with FALLS -------------------------
	// A FALLS (l, r, s, n) is n equally spaced segments [l+i*s, r+i*s].
	// The Figure 3 file stripes 2-byte units over three subfiles.
	pattern, err := part.NewPattern(
		part.Element{Name: "subfile0", Set: falls.Set{falls.MustLeaf(0, 1, 6, 1)}},
		part.Element{Name: "subfile1", Set: falls.Set{falls.MustLeaf(2, 3, 6, 1)}},
		part.Element{Name: "subfile2", Set: falls.Set{falls.MustLeaf(4, 5, 6, 1)}},
	)
	if err != nil {
		log.Fatal(err)
	}
	file, err := part.NewFile(2, pattern) // displacement 2, as in the paper
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pattern size: %d bytes per repetition\n", pattern.Size())

	// --- 2. Mapping functions ---------------------------------------
	// MAP_S maps a file offset onto a subfile offset; MAP⁻¹_S inverts.
	m1, err := core.NewMapper(file, 1)
	if err != nil {
		log.Fatal(err)
	}
	v, err := m1.Map(10)
	if err != nil {
		log.Fatal(err)
	}
	x, err := m1.MapInv(v)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("MAP_S1(10) = %d, MAP⁻¹_S1(%d) = %d  (paper §6's worked example)\n", v, v, x)

	// Offsets owned by other subfiles snap with next/previous maps.
	m0 := core.MustMapper(file, 0)
	next, _ := m0.MapNext(5)
	prev, _ := m0.MapPrev(5)
	fmt.Printf("offset 5 is not on subfile 0: next map %d, previous map %d\n", next, prev)

	// --- 3. Intersect two partitions --------------------------------
	// A logical view in 4-byte stripes over two elements.
	viewPat, err := part.Stripe(4, 2)
	if err != nil {
		log.Fatal(err)
	}
	viewFile := part.MustFile(2, viewPat)
	inter, err := redist.IntersectElements(viewFile, 0, file, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("view0 ∩ subfile1 = %s (period %d, %d bytes/period)\n",
		inter.Set, inter.Period, inter.BytesPerPeriod())

	// --- 4. Redistribute data between the partitions ----------------
	data := []byte("the quick brown fox jumps over the lazy dog!")
	srcBufs := redist.SplitFile(viewFile, data) // data as the view partition stores it
	plan, err := redist.NewPlan(viewFile, file)
	if err != nil {
		log.Fatal(err)
	}
	dstBufs := make([][]byte, file.Pattern.Len())
	for e := range dstBufs {
		dstBufs[e] = make([]byte, file.ElementBytes(e, int64(len(data))))
	}
	if err := plan.Execute(srcBufs, dstBufs, int64(len(data))); err != nil {
		log.Fatal(err)
	}
	for e, buf := range dstBufs {
		fmt.Printf("subfile %d now holds: %q\n", e, string(buf))
	}

	// Joining the subfiles restores the original byte stream.
	back, err := redist.JoinFile(file, dstBufs, int64(len(data)))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reassembled: %q\n", string(back))
	if string(back) != string(data) {
		log.Fatal("round trip failed")
	}
	fmt.Println("round trip OK")
}

// Cluster I/O: parallel writes and reads through Clusterfile views
// (§8), including a mid-run physical re-partitioning — the "disk
// redistribution on the fly" utilization of §3.
//
// Four compute nodes share one file. Each sets a row-block view and
// writes its stripe; the file lives as column blocks on four I/O
// nodes. The example then re-partitions the stored file into row
// blocks with a redistribution plan and shows the same views now
// hitting the optimal layout (zero-copy sends).
//
// Run: go run ./examples/clusterio [-n 256]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"

	"parafile/internal/clusterfile"
	"parafile/internal/part"
	"parafile/internal/redist"
	"parafile/internal/sim"
)

func main() {
	log.SetFlags(0)
	n := flag.Int64("n", 256, "matrix side in bytes (multiple of 4)")
	flag.Parse()
	if *n < 4 || *n%4 != 0 {
		log.Fatalf("matrix side %d must be a positive multiple of 4", *n)
	}
	total := *n * *n
	per := total / 4

	cluster, err := clusterfile.New(clusterfile.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Physical partition: column blocks — a poor match for row access.
	colsPat, err := part.ColBlocks(*n, *n, 4)
	if err != nil {
		log.Fatal(err)
	}
	file, err := cluster.CreateFile("shared.mat", part.MustFile(0, colsPat), nil)
	if err != nil {
		log.Fatal(err)
	}

	// Logical partition: row blocks, one view per compute node.
	rowsPat, err := part.RowBlocks(*n, *n, 4)
	if err != nil {
		log.Fatal(err)
	}
	logical := part.MustFile(0, rowsPat)

	img := make([]byte, total)
	for i := range img {
		img[i] = byte(i*13 + 5)
	}

	fmt.Printf("phase 1: writing a %d×%d matrix through row views into a COLUMN-block file\n", *n, *n)
	views := make([]*clusterfile.View, 4)
	ops := make([]*clusterfile.WriteOp, 4)
	for node := 0; node < 4; node++ {
		v, err := file.SetView(node, logical, node)
		if err != nil {
			log.Fatal(err)
		}
		views[node] = v
		op, err := v.StartWrite(clusterfile.ToBufferCache, 0, per-1, img[int64(node)*per:int64(node+1)*per])
		if err != nil {
			log.Fatal(err)
		}
		ops[node] = op
	}
	cluster.RunAll()
	for node, op := range ops {
		if op.Err != nil {
			log.Fatal(op.Err)
		}
		fmt.Printf("  node %d: %d messages, %d zero-copy, t_net %dµs\n",
			node, op.Stats.Messages, op.Stats.ContiguousSends, op.Stats.TNet/sim.Microsecond)
	}

	// Verify the stored content.
	colFile := part.MustFile(0, colsPat)
	want := redist.SplitFile(colFile, img)
	for e := range want {
		if !bytes.Equal(file.Subfile(e), want[e]) {
			log.Fatalf("subfile %d content wrong after write", e)
		}
	}
	fmt.Println("  stored content verified")

	// Phase 2: re-partition the file on the fly (§3: "using the
	// redistribution algorithm it is possible to implement disk
	// redistribution on the fly, in order to better suit the layout to
	// a certain access pattern"). Data moves I/O node to I/O node over
	// the simulated interconnect.
	fmt.Println("\nphase 2: redistributing the stored file from column blocks to row blocks (disk to disk)")
	rowFile := part.MustFile(0, rowsPat)
	file2, rop, err := cluster.StartRedistribute(file, "shared.mat.v2", rowFile, nil, total)
	if err != nil {
		log.Fatal(err)
	}
	cluster.RunAll()
	if rop.Err != nil {
		log.Fatal(rop.Err)
	}
	fmt.Printf("  moved %d bytes in %d inter-I/O-node messages, %dµs simulated\n",
		rop.Stats.Bytes, rop.Stats.Messages, rop.Stats.TNet/sim.Microsecond)

	// Verify the new on-disk decomposition.
	wantNew := redist.SplitFile(rowFile, img)
	for e := range wantNew {
		if !bytes.Equal(file2.Subfile(e), wantNew[e]) {
			log.Fatalf("subfile %d content wrong after redistribution", e)
		}
	}
	fmt.Println("  new decomposition verified")

	fmt.Println("\nphase 3: the same row views on the new layout take the zero-copy path")
	for node := 0; node < 4; node++ {
		v, err := file2.SetView(node, logical, node)
		if err != nil {
			log.Fatal(err)
		}
		views[node] = v
		op, err := v.StartWrite(clusterfile.ToBufferCache, 0, per-1, img[int64(node)*per:int64(node+1)*per])
		if err != nil {
			log.Fatal(err)
		}
		ops[node] = op
	}
	cluster.RunAll()
	for node, op := range ops {
		if op.Err != nil {
			log.Fatal(op.Err)
		}
		fmt.Printf("  node %d: %d messages, %d zero-copy, t_net %dµs\n",
			node, op.Stats.Messages, op.Stats.ContiguousSends, op.Stats.TNet/sim.Microsecond)
	}

	// Read everything back from the new layout and verify.
	for node := 0; node < 4; node++ {
		out := make([]byte, per)
		op, err := views[node].StartRead(0, per-1, out)
		if err != nil {
			log.Fatal(err)
		}
		cluster.RunAll()
		if op.Err != nil {
			log.Fatal(op.Err)
		}
		if !bytes.Equal(out, img[int64(node)*per:int64(node+1)*per]) {
			log.Fatalf("node %d read-back mismatch", node)
		}
	}
	fmt.Println("  read-back verified on the new layout")
}

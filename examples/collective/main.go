// Collective I/O: two-phase writes on top of the redistribution
// machinery (memory-memory redistribution into contiguous aggregator
// domains) versus independent non-contiguous access with data sieving
// — the paper's §1 problem statement ("lots of small messages",
// "message aggregation is possible, but the costs for gathering and
// scattering are not negligible") made measurable.
//
// Run: go run ./examples/collective
package main

import (
	"bytes"
	"fmt"
	"log"

	"parafile/internal/mpiio"
)

const (
	rows  = 64
	cols  = 64
	ranks = 4
)

func main() {
	log.SetFlags(0)

	// Each rank owns a column block of a rows×cols matrix: the classic
	// poor match for a row-major file.
	fts := make([]*mpiio.Datatype, ranks)
	data := make([][]byte, ranks)
	for r := 0; r < ranks; r++ {
		ft, err := mpiio.Subarray(
			[]int64{rows, cols},
			[]int64{0, int64(r) * cols / ranks},
			[]int64{rows, cols / ranks},
			1,
		)
		if err != nil {
			log.Fatal(err)
		}
		fts[r] = ft
		data[r] = make([]byte, ft.Size())
		for i := range data[r] {
			data[r][i] = byte(r*60 + i)
		}
	}

	// Strategy 1: independent writes through views (every rank touches
	// `rows` separate file fragments).
	indep := mpiio.NewFile(nil)
	var fragments int64
	for r := 0; r < ranks; r++ {
		if err := indep.SetView(0, fts[r]); err != nil {
			log.Fatal(err)
		}
		stats, err := indep.SievedWriteAt(data[r], 0)
		if err != nil {
			log.Fatal(err)
		}
		fragments += stats.Fragments
		fmt.Printf("rank %d independent (sieved): %d fragments, %d useful bytes, %d transferred\n",
			r, stats.Fragments, stats.UsefulBytes, stats.SievedBytes)
	}

	// Strategy 2: collective two-phase write.
	coll := mpiio.NewFile(nil)
	stats, err := mpiio.CollectiveWrite(coll, 0, fts, data, rows*cols)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncollective two-phase: %d ranks exchanged %d bytes, then %d contiguous file writes\n",
		stats.Ranks, stats.ExchangedBytes, stats.FileWrites)
	fmt.Printf("independent I/O would have touched %d file fragments; two-phase touches %d regions\n",
		stats.DirectSegments, stats.FileWrites)

	if !bytes.Equal(indep.Bytes(), coll.Bytes()) {
		log.Fatal("strategies disagree!")
	}
	fmt.Printf("\nboth strategies produced the identical %d-byte file\n", coll.Len())
	fmt.Printf("reduction: %d fragmented accesses -> %d contiguous ones (%.0fx)\n",
		fragments, int64(stats.FileWrites), float64(stats.DirectSegments)/float64(stats.FileWrites))
}

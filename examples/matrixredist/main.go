// Matrix redistribution: convert a 2-D matrix between the paper's
// three physical layouts — row blocks, column blocks and square
// blocks — using the FALLS intersection machinery, and compare the
// segment-wise plan against the per-byte baseline.
//
// This is the §1/§3 motivating workload: multidimensional arrays
// partitioned differently on disk and in memory.
//
// Run: go run ./examples/matrixredist [-n 512]
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"time"

	"parafile/internal/baseline"
	"parafile/internal/part"
	"parafile/internal/redist"
)

func main() {
	log.SetFlags(0)
	n := flag.Int64("n", 512, "matrix side in bytes (multiple of 4)")
	flag.Parse()
	if *n < 4 || *n%4 != 0 {
		log.Fatalf("matrix side %d must be a positive multiple of 4", *n)
	}

	layouts := map[string]*part.Pattern{}
	var err error
	if layouts["rows"], err = part.RowBlocks(*n, *n, 4); err != nil {
		log.Fatal(err)
	}
	if layouts["cols"], err = part.ColBlocks(*n, *n, 4); err != nil {
		log.Fatal(err)
	}
	if layouts["blocks"], err = part.SquareBlocks(*n, *n, 2, 2); err != nil {
		log.Fatal(err)
	}

	// A recognizable matrix: element (i, j) = i*31 + j*7.
	img := make([]byte, *n**n)
	for i := int64(0); i < *n; i++ {
		for j := int64(0); j < *n; j++ {
			img[i**n+j] = byte(i*31 + j*7)
		}
	}

	names := []string{"rows", "cols", "blocks"}
	fmt.Printf("redistributing a %d×%d byte matrix between layouts (4 partitions each)\n\n", *n, *n)
	for _, from := range names {
		for _, to := range names {
			src := part.MustFile(0, layouts[from])
			dst := part.MustFile(0, layouts[to])
			srcBufs := redist.SplitFile(src, img)
			want := redist.SplitFile(dst, img)
			got := make([][]byte, len(want))
			for e := range want {
				got[e] = make([]byte, len(want[e]))
			}

			t0 := time.Now()
			plan, err := redist.NewPlan(src, dst)
			if err != nil {
				log.Fatal(err)
			}
			planTime := time.Since(t0)

			t0 = time.Now()
			if err := plan.ExecuteParallel(srcBufs, got, *n**n, 4); err != nil {
				log.Fatal(err)
			}
			execTime := time.Since(t0)

			for e := range want {
				if !bytes.Equal(got[e], want[e]) {
					log.Fatalf("%s -> %s: element %d corrupted", from, to, e)
				}
			}
			fmt.Printf("  %-6s -> %-6s  plan %8v (once)   execute %8v   %3d transfers, %5d runs/period\n",
				from, to, planTime, execTime, len(plan.Transfers), plan.SegmentsPerPeriod())
		}
	}

	// The §3 argument: segment-wise movement vs per-byte mapping.
	src := part.MustFile(0, layouts["rows"])
	dst := part.MustFile(0, layouts["cols"])
	srcBufs := redist.SplitFile(src, img)
	out := redist.SplitFile(dst, img)
	plan, _ := redist.NewPlan(src, dst)

	t0 := time.Now()
	if err := plan.Execute(srcBufs, out, *n**n); err != nil {
		log.Fatal(err)
	}
	segTime := time.Since(t0)
	t0 = time.Now()
	if err := baseline.BytewiseRedistribute(src, dst, srcBufs, out, *n**n); err != nil {
		log.Fatal(err)
	}
	byteTime := time.Since(t0)
	fmt.Printf("\nworst-case pair (rows -> cols): segment-wise %v, per-byte %v (%.0fx slower)\n",
		segTime, byteTime, float64(byteTime)/float64(segTime))
	fmt.Println("the gap is the paper's §3 point: redistribute segments, never single bytes")
}

// integration_test.go drives the whole stack end to end, the way a
// downstream user would: HPF notation -> partitions -> a simulated
// Clusterfile deployment with disk-backed subfiles -> concurrent
// writes through views -> matching-degree-guided re-layout ->
// disk-to-disk redistribution -> metadata save/reopen -> verified
// read-back.
package parafile_test

import (
	"bytes"
	"math/rand"
	"testing"

	"parafile/internal/clusterfile"
	"parafile/internal/hpf"
	"parafile/internal/match"
	"parafile/internal/part"
	"parafile/internal/redist"
)

func TestEndToEndLifecycle(t *testing.T) {
	const n = 128
	dir := t.TempDir()

	// --- Build partitions from notation --------------------------------
	physPat, err := hpf.Pattern("128x128", "*,BLOCK(4)", 1) // column blocks
	if err != nil {
		t.Fatal(err)
	}
	logiPat, err := hpf.Pattern("128x128", "BLOCK(4),*", 1) // row blocks
	if err != nil {
		t.Fatal(err)
	}
	phys := part.MustFile(0, physPat)
	logical := part.MustFile(0, logiPat)

	// --- Deploy the cluster with disk-backed subfiles ------------------
	cfg := clusterfile.DefaultConfig()
	cfg.Storage = clusterfile.DirStorageFactory(dir)
	cluster, err := clusterfile.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	file, err := cluster.CreateFile("dataset", phys, nil)
	if err != nil {
		t.Fatal(err)
	}

	// --- Concurrent writes through views -------------------------------
	img := make([]byte, n*n)
	rand.New(rand.NewSource(42)).Read(img)
	per := int64(n * n / 4)
	views := make([]*clusterfile.View, 4)
	ops := make([]*clusterfile.WriteOp, 4)
	for node := 0; node < 4; node++ {
		v, err := file.SetView(node, logical, node)
		if err != nil {
			t.Fatal(err)
		}
		views[node] = v
		op, err := v.StartWrite(clusterfile.ToBufferCache, 0, per-1,
			img[int64(node)*per:int64(node+1)*per])
		if err != nil {
			t.Fatal(err)
		}
		ops[node] = op
	}
	cluster.RunAll()
	for i, op := range ops {
		if op.Err != nil || !op.Done() {
			t.Fatalf("node %d write: %v", i, op.Err)
		}
	}

	// --- Verify the physical decomposition on real disk files ----------
	want := redist.SplitFile(phys, img)
	for e := range want {
		if !bytes.Equal(file.Subfile(e), want[e]) {
			t.Fatalf("subfile %d content wrong", e)
		}
	}

	// --- Diagnose the layout with the matching degree ------------------
	deg, err := match.Compute(logical, phys)
	if err != nil {
		t.Fatal(err)
	}
	if deg.Score >= 0.5 {
		t.Fatalf("column layout should match poorly, score %v", deg.Score)
	}
	order, _, err := match.PredictRank(logical, []*part.File{phys, logical})
	if err != nil {
		t.Fatal(err)
	}
	if order[0] != 1 {
		t.Fatalf("ranking should prefer the row layout, got %v", order)
	}

	// --- Re-layout on the fly, disk to disk ----------------------------
	newFile, rop, err := cluster.StartRedistribute(file, "dataset.v2", logical, nil, n*n)
	if err != nil {
		t.Fatal(err)
	}
	cluster.RunAll()
	if rop.Err != nil || !rop.Done() {
		t.Fatalf("redistribution: %v", rop.Err)
	}

	// --- Persist and reopen in a fresh cluster -------------------------
	if err := newFile.SaveMetadata(dir); err != nil {
		t.Fatal(err)
	}
	cfg2 := clusterfile.DefaultConfig()
	cfg2.Storage = clusterfile.ReopenDirStorageFactory(dir)
	cluster2, err := clusterfile.New(cfg2)
	if err != nil {
		t.Fatal(err)
	}
	reopened, err := cluster2.LoadMetadata(dir, "dataset.v2")
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()

	// --- Read back through views on the reopened file ------------------
	for node := 0; node < 4; node++ {
		v, err := reopened.SetView(node, logical, node)
		if err != nil {
			t.Fatal(err)
		}
		// The new layout matches the views perfectly: view-set should
		// find exactly one overlapping subfile.
		if got := len(v.Subfiles()); got != 1 {
			t.Fatalf("node %d overlaps %d subfiles after re-layout, want 1", node, got)
		}
		out := make([]byte, per)
		op, err := v.StartRead(0, per-1, out)
		if err != nil {
			t.Fatal(err)
		}
		cluster2.RunAll()
		if op.Err != nil {
			t.Fatal(op.Err)
		}
		if !bytes.Equal(out, img[int64(node)*per:int64(node+1)*per]) {
			t.Fatalf("node %d read-back differs after the full lifecycle", node)
		}
	}
}
